"""The secret-taint engine: where key material flows, statically.

One :class:`ModuleTaint` per source file.  The engine is a pragmatic
abstract interpreter over the AST — no SSA, no whole-program call graph —
built around one asymmetry that fits cryptographic code unusually well:

* **Sources** are explicit: ``sample_exponent``/``resolve_rng`` draws,
  ``Secret[...]`` annotations, ``# audit: secret`` markers, and the
  name-based :data:`~repro.audit.vocabulary.SECRET_RETURNING` set
  (``key_agreement``, ``kdf``, ``keygen``...).

* **Propagation** follows assignments, tuple unpacking, arithmetic,
  container packing, attribute access on tainted objects (minus the
  declassifying ``public*`` attributes), hashing and conversions.

* **Generic calls are optimistic boundaries**: ``exponentiate(g, k)``
  returns a *public* element even though ``k`` is secret — that is the
  definition of public-key cryptography — so an unknown call does not
  propagate taint.  Functions that do return key material must be named,
  annotated or marked; within a module the engine also infers this
  (a function whose return value is tainted without any tainted parameter
  becomes secret-returning for the whole module, to a fixpoint).

Method bodies run under their class: ``self.x = <tainted>`` taints ``x``
reads in every method of the class (fixpoint across rounds), and a
``Secret[...]``-annotated dataclass field taints attribute reads both on
objects constructed from the class by name and on parameters annotated
with the class.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.audit.annotations import MarkerSet
from repro.audit.vocabulary import (
    PROPAGATORS,
    PUBLIC_ATTRS,
    RNG_DRAW_METHODS,
    RNG_RECEIVER_NAMES,
    SANITIZERS,
    SECRET_ATTRS,
    SECRET_RETURNING,
)

__all__ = ["GlobalVocabulary", "ModuleTaint", "collect_vocabulary", "analyze_module"]

#: Parameters with these names are key material by convention.
_SECRET_PARAM_NAMES = frozenset(
    {"secret", "shared_secret", "private", "private_key", "secret_exponent", "nonce"}
)

_MAX_ROUNDS = 4
_MAX_PASSES = 4


def _annotation_is_secret(node: Optional[ast.AST]) -> bool:
    """Whether an annotation AST is ``Secret[...]`` (or a string thereof)."""
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip().startswith("Secret[")
    if isinstance(node, ast.Subscript):
        target = node.value
        if isinstance(target, ast.Name) and target.id == "Secret":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "Secret":
            return True
    return False


def _annotation_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """The plain class name an annotation refers to, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        if text.isidentifier():
            return text
    if isinstance(node, ast.Subscript):  # Optional[X] / "Optional[X]"
        target = node.value
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name in ("Optional",):
            return _annotation_class_name(node.slice)
    return None


def _call_name(func: ast.AST) -> Optional[str]:
    """The terminal name of a call target: ``f`` or ``obj.meth`` -> name."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@dataclass
class GlobalVocabulary:
    """Run-wide, collected over every file before any module is analyzed."""

    secret_functions: Set[str] = field(default_factory=set)
    #: class name -> attribute names annotated ``Secret[...]``.
    secret_class_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    #: attribute names from annotations that are unambiguous enough to
    #: taint globally (len >= 3; short names like RSA's ``d`` stay
    #: class-bound so ``field.p`` never taints).
    secret_attrs: Set[str] = field(default_factory=set)

    def merged_secret_functions(self) -> Set[str]:
        return set(SECRET_RETURNING) | self.secret_functions

    def merged_secret_attrs(self) -> Set[str]:
        return set(SECRET_ATTRS) | self.secret_attrs


def collect_vocabulary(
    modules: "List[Tuple[str, ast.AST, MarkerSet]]",
) -> GlobalVocabulary:
    """Pass A: harvest annotations and markers from every file at once."""
    vocab = GlobalVocabulary()
    for _path, tree, markers in modules:
        secret_lines = markers.secret_lines()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.lineno in secret_lines:
                    secret_lines[node.lineno].used = True
                    vocab.secret_functions.add(node.name)
                if _annotation_is_secret(node.returns):
                    vocab.secret_functions.add(node.name)
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        if _annotation_is_secret(stmt.annotation):
                            vocab.secret_class_attrs.setdefault(
                                node.name, set()
                            ).add(stmt.target.id)
                            if len(stmt.target.id) >= 3:
                                vocab.secret_attrs.add(stmt.target.id)
    return vocab


@dataclass
class ModuleTaint:
    """What the engine concluded about one module."""

    path: str
    tree: ast.AST
    #: ids of every AST expression node that evaluates to a tainted value.
    tainted_nodes: Set[int] = field(default_factory=set)
    #: function names (local defs) inferred to return key material.
    inferred_secret_functions: Set[str] = field(default_factory=set)
    #: names bound by ``functools.lru_cache``/``functools.cache`` decorators.
    cached_functions: Set[str] = field(default_factory=set)

    def is_tainted(self, node: ast.AST) -> bool:
        return id(node) in self.tainted_nodes


class _Scope:
    """Mutable per-function analysis state."""

    def __init__(
        self,
        tainted: Set[str],
        classes: Dict[str, str],
        rngs: Set[str],
        class_name: Optional[str],
        public_rngs: Optional[Set[str]] = None,
    ):
        self.tainted = tainted  # local names holding secrets
        self.classes = classes  # local name -> constructed/annotated class
        self.rngs = rngs  # local names holding an RNG from resolve_rng
        self.class_name = class_name  # enclosing class for self.* resolution
        # Names bound to an explicit ``random.Random(seed)``: the declared
        # *reproducibility* generator.  RC201 polices whether constructing
        # one is legitimate; its draws are not key material, so they beat
        # the rng-receiver-name heuristic.
        self.public_rngs: Set[str] = public_rngs if public_rngs is not None else set()

    def clone(self) -> "_Scope":
        return _Scope(
            set(self.tainted),
            dict(self.classes),
            set(self.rngs),
            self.class_name,
            set(self.public_rngs),
        )


class _ModuleAnalyzer:
    """Runs the rounds for one module."""

    def __init__(self, path: str, tree: ast.AST, markers: MarkerSet, vocab: GlobalVocabulary):
        self.path = path
        self.tree = tree
        self.markers = markers
        self.vocab = vocab
        self.secret_lines = markers.secret_lines()
        self.secret_functions = vocab.merged_secret_functions()
        self.secret_attrs = vocab.merged_secret_attrs()
        self.secret_class_attrs: Dict[str, Set[str]] = {
            name: set(attrs) for name, attrs in vocab.secret_class_attrs.items()
        }
        self.inferred: Set[str] = set()
        self.cached_functions: Set[str] = set()
        self.marks: Set[int] = set()
        self._changed = False

    # -- driving ---------------------------------------------------------------

    def analyze(self) -> ModuleTaint:
        self._collect_cached_functions()
        for _round in range(_MAX_ROUNDS):
            self._changed = False
            self.marks = set()
            module_scope = _Scope(set(), {}, set(), None)
            self._exec_body(getattr(self.tree, "body", []), module_scope)
            if not self._changed:
                break
        return ModuleTaint(
            path=self.path,
            tree=self.tree,
            tainted_nodes=self.marks,
            inferred_secret_functions=set(self.inferred),
            cached_functions=set(self.cached_functions),
        )

    def _collect_cached_functions(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    target = decorator.func if isinstance(decorator, ast.Call) else decorator
                    name = _call_name(target)
                    if name in ("lru_cache", "cache"):
                        self.cached_functions.add(node.name)

    # -- statement execution ---------------------------------------------------

    def _exec_body(self, body, scope: _Scope) -> None:
        # Two passes over a body reach the loop-carried flows that a single
        # forward sweep misses; taint only grows, so this converges.
        for _pass in range(_MAX_PASSES):
            before = (set(scope.tainted), set(scope.rngs))
            for stmt in body:
                self._exec(stmt, scope)
            if (set(scope.tainted), set(scope.rngs)) == before:
                break

    def _exec(self, stmt: ast.AST, scope: _Scope) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._analyze_function(stmt, scope)
        elif isinstance(stmt, ast.ClassDef):
            inner = _Scope(
                set(scope.tainted),
                dict(scope.classes),
                set(scope.rngs),
                stmt.name,
                set(scope.public_rngs),
            )
            self._exec_body(stmt.body, inner)
        elif isinstance(stmt, ast.Assign):
            tainted = self._marked_secret(stmt) or self._taint(stmt.value, scope)
            self._track_special_assign(stmt.targets, stmt.value, scope)
            for target in stmt.targets:
                self._assign(target, tainted, scope)
        elif isinstance(stmt, ast.AnnAssign):
            tainted = (
                self._marked_secret(stmt)
                or _annotation_is_secret(stmt.annotation)
                or (stmt.value is not None and self._taint(stmt.value, scope))
            )
            bound = _annotation_class_name(stmt.annotation)
            if bound and isinstance(stmt.target, ast.Name) and bound in self.secret_class_attrs:
                scope.classes[stmt.target.id] = bound
            if stmt.value is not None:
                self._track_special_assign([stmt.target], stmt.value, scope)
            self._assign(stmt.target, tainted, scope)
        elif isinstance(stmt, ast.AugAssign):
            tainted = self._taint(stmt.value, scope) or self._taint(stmt.target, scope)
            self._assign(stmt.target, tainted, scope)
        elif isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            self._assign(stmt.target, self._taint(stmt.iter, scope), scope)
            self._exec_body(stmt.body, scope)
            self._exec_body(stmt.orelse, scope)
        elif isinstance(stmt, ast.While):
            self._taint(stmt.test, scope)
            self._exec_body(stmt.body, scope)
            self._exec_body(stmt.orelse, scope)
        elif isinstance(stmt, ast.If):
            self._taint(stmt.test, scope)
            self._exec_body(stmt.body, scope)
            self._exec_body(stmt.orelse, scope)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tainted = self._taint(item.context_expr, scope)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tainted, scope)
            self._exec_body(stmt.body, scope)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body, scope)
            for handler in stmt.handlers:
                self._exec_body(handler.body, scope)
            self._exec_body(stmt.orelse, scope)
            self._exec_body(stmt.finalbody, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                tainted = self._taint(stmt.value, scope)
                if tainted:
                    self._return_tainted = True
        elif isinstance(stmt, (ast.Expr, ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._taint(child, scope)
        elif isinstance(stmt, ast.Match):
            self._taint(stmt.subject, scope)
            for case in stmt.cases:
                self._exec_body(case.body, scope)
        # imports, global/nonlocal, pass: nothing flows

    def _marked_secret(self, stmt: ast.AST) -> bool:
        marker = self.secret_lines.get(getattr(stmt, "lineno", -1))
        if marker is not None:
            marker.used = True
            return True
        return False

    def _track_special_assign(self, targets, value: ast.AST, scope: _Scope) -> None:
        """Class construction and RNG resolution bindings."""
        cls: Optional[str] = None
        is_rng = False
        is_public_rng = False
        if isinstance(value, ast.Call):
            name = _call_name(value.func)
            if name in self.secret_class_attrs:
                cls = name
            if name == "resolve_rng":
                is_rng = True
            if name == "Random":
                is_public_rng = True
        for target in targets:
            if isinstance(target, ast.Name):
                if cls:
                    scope.classes[target.id] = cls
                if is_rng:
                    scope.rngs.add(target.id)
                    scope.public_rngs.discard(target.id)
                if is_public_rng:
                    scope.public_rngs.add(target.id)
                    scope.rngs.discard(target.id)

    def _assign(self, target: ast.AST, tainted: bool, scope: _Scope) -> None:
        if isinstance(target, ast.Name):
            if tainted and target.id not in scope.tainted:
                scope.tainted.add(target.id)
                self._changed = True
            if tainted:
                self.marks.add(id(target))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) else element
                self._assign(inner, tainted, scope)
        elif isinstance(target, ast.Attribute):
            # self.x = <tainted> taints x across the whole class.
            if (
                tainted
                and scope.class_name
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs = self.secret_class_attrs.setdefault(scope.class_name, set())
                if target.attr not in attrs:
                    attrs.add(target.attr)
                    self._changed = True
        elif isinstance(target, ast.Subscript):
            # container[key] = <tainted>: the container now holds secrets.
            self._taint(target.slice, scope)
            base = target.value
            if tainted:
                if isinstance(base, ast.Name):
                    self._assign(base, True, scope)
                elif (
                    isinstance(base, ast.Attribute)
                    and scope.class_name
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    attrs = self.secret_class_attrs.setdefault(scope.class_name, set())
                    if base.attr not in attrs:
                        attrs.add(base.attr)
                        self._changed = True

    # -- functions -------------------------------------------------------------

    def _analyze_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", outer: _Scope
    ) -> None:
        scope = _Scope(
            set(outer.tainted),
            dict(outer.classes),
            set(outer.rngs),
            outer.class_name,
            set(outer.public_rngs),
        )
        args = node.args
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for arg in all_args:
            if _annotation_is_secret(arg.annotation) or arg.arg in _SECRET_PARAM_NAMES:
                scope.tainted.add(arg.arg)
            bound = _annotation_class_name(arg.annotation)
            if bound and bound in self.secret_class_attrs:
                scope.classes[arg.arg] = bound
            if RNG_RECEIVER_NAMES.search(arg.arg):
                scope.rngs.add(arg.arg)
        previous_flag = getattr(self, "_return_tainted", False)
        self._return_tainted = False
        self._exec_body(node.body, scope)
        # A function whose return taint can only have come from a secret
        # *parameter* is a transformer, not a source — callers already know
        # whether what they pass in is secret.  Only parameter-free taint
        # (an internal sample_exponent, a key_agreement call...) promotes
        # the function to secret-returning for the whole module.
        had_secret_params = any(
            arg.arg in _SECRET_PARAM_NAMES or _annotation_is_secret(arg.annotation)
            for arg in all_args
        )
        if self._return_tainted and not had_secret_params:
            if node.name not in self.secret_functions:
                self.secret_functions.add(node.name)
                self.inferred.add(node.name)
                self._changed = True
        self._return_tainted = previous_flag

    # -- expression taint ------------------------------------------------------

    def _taint(self, node: ast.AST, scope: _Scope) -> bool:
        result = self._taint_inner(node, scope)
        if result:
            self.marks.add(id(node))
        return result

    def _taint_inner(self, node: ast.AST, scope: _Scope) -> bool:
        if isinstance(node, ast.Name):
            return node.id in scope.tainted
        if isinstance(node, ast.Constant):
            return False
        if isinstance(node, ast.Attribute):
            return self._attribute_taint(node, scope)
        if isinstance(node, ast.Call):
            return self._call_taint(node, scope)
        if isinstance(node, ast.BinOp):
            left = self._taint(node.left, scope)
            right = self._taint(node.right, scope)
            return left or right
        if isinstance(node, ast.UnaryOp):
            return self._taint(node.operand, scope)
        if isinstance(node, ast.BoolOp):
            return any([self._taint(value, scope) for value in node.values])
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            tainted = any([self._taint(operand, scope) for operand in operands])
            # ``x is None`` on a secret reveals presence, not value.
            if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops) and any(
                isinstance(operand, ast.Constant) and operand.value is None
                for operand in operands
            ):
                return False
            return tainted
        if isinstance(node, ast.Subscript):
            container = self._taint(node.value, scope)
            index = self._taint(node.slice, scope)
            return container or index
        if isinstance(node, ast.Slice):
            return any(
                self._taint(part, scope)
                for part in (node.lower, node.upper, node.step)
                if part is not None
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any([self._taint(element, scope) for element in node.elts])
        if isinstance(node, ast.Dict):
            keys = [self._taint(key, scope) for key in node.keys if key is not None]
            values = [self._taint(value, scope) for value in node.values]
            return any(keys) or any(values)
        if isinstance(node, ast.IfExp):
            self._taint(node.test, scope)
            return self._taint(node.body, scope) or self._taint(node.orelse, scope)
        if isinstance(node, ast.JoinedStr):
            return any(
                self._taint(value.value, scope)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
        if isinstance(node, ast.FormattedValue):
            return self._taint(node.value, scope)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return self._comprehension_taint(node, [node.elt], scope)
        if isinstance(node, ast.DictComp):
            return self._comprehension_taint(node, [node.key, node.value], scope)
        if isinstance(node, ast.NamedExpr):
            tainted = self._taint(node.value, scope)
            self._assign(node.target, tainted, scope)
            return tainted
        if isinstance(node, ast.Starred):
            return self._taint(node.value, scope)
        if isinstance(node, ast.Await):
            return self._taint(node.value, scope)
        if isinstance(node, ast.Lambda):
            return False
        return False

    def _comprehension_taint(self, node, result_exprs, scope: _Scope) -> bool:
        inner = scope.clone()
        for generator in node.generators:
            iter_tainted = self._taint(generator.iter, inner)
            self._assign(generator.target, iter_tainted, inner)
            for condition in generator.ifs:
                self._taint(condition, inner)
        return any([self._taint(expr, inner) for expr in result_exprs])

    def _attribute_taint(self, node: ast.Attribute, scope: _Scope) -> bool:
        if node.attr in self.secret_attrs:
            return True
        # Class-bound secret attributes: constructed or annotated locals,
        # and ``self`` within a class whose attributes were tainted.
        base = node.value
        if isinstance(base, ast.Name):
            cls = scope.classes.get(base.id)
            if cls and node.attr in self.secret_class_attrs.get(cls, ()):  # noqa: SIM118
                self._taint(base, scope)
                return True
            if base.id == "self" and scope.class_name:
                if node.attr in self.secret_class_attrs.get(scope.class_name, ()):
                    return True
        obj_tainted = self._taint(base, scope)
        if obj_tainted and node.attr in PUBLIC_ATTRS:
            return False
        return obj_tainted

    def _call_taint(self, node: ast.Call, scope: _Scope) -> bool:
        name = _call_name(node.func)
        arg_taints = [self._taint(arg, scope) for arg in node.args] + [
            self._taint(keyword.value, scope) for keyword in node.keywords
        ]
        any_arg_tainted = any(arg_taints)
        receiver_tainted = False
        if isinstance(node.func, ast.Attribute):
            receiver_tainted = self._taint(node.func.value, scope)
        if name in SANITIZERS:
            return False
        if name in self.secret_functions:
            return True
        # RNG draws through the library seam are sources.
        if (
            name in RNG_DRAW_METHODS
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id not in scope.public_rngs
            and (
                RNG_RECEIVER_NAMES.search(node.func.value.id)
                or node.func.value.id in scope.rngs
            )
        ):
            return True
        if name in PROPAGATORS:
            return any_arg_tainted or receiver_tainted
        # A method invoked on a secret keeps the secret.
        if receiver_tainted:
            return True
        # Optimistic boundary: unknown calls return public data.
        return False


def analyze_module(
    path: str, tree: ast.AST, markers: MarkerSet, vocab: GlobalVocabulary
) -> ModuleTaint:
    """Run the taint rounds for one parsed module."""
    return _ModuleAnalyzer(path, tree, markers, vocab).analyze()
