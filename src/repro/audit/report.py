"""Reporters: human text and machine JSON.

The JSON document leads with a ``summary`` object so downstream report
tooling (``repro.perf`` table rendering, CI artifact diffing) can ingest
the audit outcome without walking the finding list::

    {
      "summary": {"rules_run": 8, "modules_scanned": 57, "findings": 9,
                  "new": 0, "baselined": 3, "suppressed": 6},
      "findings": [ {"rule": "CT103", ...}, ... ]
    }
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.audit.engine import AuditResult
from repro.audit.rules import Finding

__all__ = ["summarize", "render_text", "render_json", "summary_line"]


def summarize(result: AuditResult) -> Dict[str, int]:
    return {
        "rules_run": result.rules_run,
        "modules_scanned": result.modules_scanned,
        "findings": len(result.findings),
        "new": len(result.by_status("new")),
        "baselined": len(result.by_status("baselined")),
        "suppressed": len(result.by_status("suppressed")),
    }


def summary_line(summary: Dict[str, int]) -> str:
    """One-line digest, shared by the CLI footer and the report pipeline."""
    return (
        f"audit: {summary['rules_run']} rules over "
        f"{summary['modules_scanned']} modules — "
        f"{summary['new']} new, {summary['baselined']} baselined, "
        f"{summary['suppressed']} suppressed"
    )


_STATUS_MARK = {"new": "!", "baselined": "=", "suppressed": "~"}


def render_text(result: AuditResult, show_accepted: bool = False) -> str:
    """Grouped-by-file report; accepted findings hidden unless asked."""
    lines: List[str] = []
    current_path = None
    shown = 0
    for finding in result.findings:
        if finding.status != "new" and not show_accepted:
            continue
        if finding.path != current_path:
            if current_path is not None:
                lines.append("")
            lines.append(finding.path)
            current_path = finding.path
        mark = _STATUS_MARK.get(finding.status, "?")
        context = f" [{finding.context}]" if finding.context else ""
        lines.append(
            f"  {mark} {finding.line}:{finding.col} {finding.rule}{context} "
            f"{finding.message}"
        )
        shown += 1
    if lines:
        lines.append("")
    lines.append(summary_line(summarize(result)))
    return "\n".join(lines)


def render_json(result: AuditResult) -> str:
    document = {
        "summary": summarize(result),
        "root": result.root,
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2) + "\n"
