"""The annotation vocabulary the analyzer understands.

Three ways to talk to :mod:`repro.audit` from inside the code it checks:

* ``Secret[T]`` — a typing alias marking a value as key material.  It is
  ``Annotated[T, SECRET_TAG]``, so it costs nothing at runtime and type
  checkers see straight through it, but the taint engine treats every
  parameter, variable or dataclass field annotated with it as a secret
  source::

      @dataclass
      class CeilidhKeyPair:
          private: Secret[int]      # taints kp.private at every use site
          public: CompressedElement

* ``# audit: secret`` — an inline marker for places an annotation cannot
  reach.  On an assignment it taints the assigned names; on a ``def`` line
  it declares that the function *returns* key material, so every call site
  is tainted.

* ``# audit: allow[RULE] reason`` — a reviewed suppression.  The finding on
  the same line (or the line directly below the marker when it stands
  alone) is accepted with the stated reason.  Several rules may share one
  marker (``allow[CT101,CT104]``).  A reason is mandatory: a suppression
  without one is itself a finding (``AUD003``), and an unknown rule id in
  the bracket is a configuration error (``AUD002``).

Markers are read from the token stream, not from the AST, so they survive
anywhere a comment can live.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

try:  # pragma: no cover - plain alias on every supported interpreter
    from typing import Annotated, TypeVar

    _T = TypeVar("_T")
    #: The metadata string carried inside ``Secret[...]`` annotations.
    SECRET_TAG = "repro.audit:secret"
    Secret = Annotated[_T, SECRET_TAG]
except ImportError:  # pragma: no cover - typing.Annotated exists on >=3.9
    Secret = None  # type: ignore[assignment]
    SECRET_TAG = "repro.audit:secret"

__all__ = [
    "Secret",
    "SECRET_TAG",
    "Marker",
    "MarkerSet",
    "parse_markers",
]

#: ``# audit: secret`` / ``# audit: allow[CT103] reason...``
_MARKER_RE = re.compile(
    r"#\s*audit:\s*(?P<kind>secret|allow)"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
    r"\s*(?P<reason>.*)$"
)


@dataclass
class Marker:
    """One parsed ``# audit:`` comment."""

    kind: str  # "secret" | "allow"
    line: int  # 1-based line the comment sits on
    rules: Tuple[str, ...] = ()
    reason: str = ""
    #: Whether the comment shares its line with code (trailing comment) or
    #: stands alone — a standalone ``allow`` applies to the next line.
    standalone: bool = False
    used: bool = field(default=False, compare=False)


@dataclass
class MarkerSet:
    """Every marker in one source file, indexed for the engine."""

    markers: List[Marker] = field(default_factory=list)
    #: line -> markers that *apply* to findings on that line.
    by_line: Dict[int, List[Marker]] = field(default_factory=dict)

    def secret_lines(self) -> Dict[int, Marker]:
        """Lines carrying a ``secret`` marker (statement start lines)."""
        return {
            marker.line: marker
            for marker in self.markers
            if marker.kind == "secret"
        }

    def allows_for(self, line: int, rule: str) -> List[Marker]:
        """The allow markers that suppress ``rule`` findings on ``line``."""
        return [
            marker
            for marker in self.by_line.get(line, [])
            if marker.kind == "allow" and rule in marker.rules
        ]

    def unused_allows(self) -> List[Marker]:
        return [
            marker
            for marker in self.markers
            if marker.kind == "allow" and not marker.used
        ]


def parse_markers(source: str) -> MarkerSet:
    """Extract every ``# audit:`` marker from ``source``.

    Tokenizing (rather than regexing raw lines) keeps markers inside string
    literals from counting as annotations.  Unreadable sources yield an
    empty set — the engine reports the parse failure separately.
    """
    result = MarkerSet()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return result
    code_lines = set()
    comment_tokens = []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comment_tokens.append(token)
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            code_lines.add(token.start[0])
    for token in comment_tokens:
        match = _MARKER_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        rules = tuple(
            part.strip()
            for part in (match.group("rules") or "").split(",")
            if part.strip()
        )
        marker = Marker(
            kind=match.group("kind"),
            line=line,
            rules=rules,
            reason=(match.group("reason") or "").strip(),
            standalone=line not in code_lines,
        )
        result.markers.append(marker)
        # A trailing allow covers its own line; a standalone allow covers
        # the next line (the statement it introduces).
        target = line + 1 if marker.standalone and marker.kind == "allow" else line
        result.by_line.setdefault(target, []).append(marker)
        if marker.kind == "allow" and not marker.standalone:
            # Multi-line statements report at their first line; a trailing
            # allow deep inside one still applies to its own line only —
            # the engine matches findings by exact reported line.
            pass
    return result
