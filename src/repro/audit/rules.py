"""The rule pack: constant-time taint sinks and repo-contract checks.

Two families, one interface.  Every rule walks one module (with the taint
engine's verdicts available for the ``CT`` family) and yields
:class:`Finding` objects carrying a stable rule id:

**Constant-time / secret-flow (taint sinks)**

========  ====================================================================
``CT101``  secret-dependent ``if``/``while``/``for``-bound/ternary/``assert``
           outside the vetted strategy kernel
``CT102``  secret used as a container or cache key (subscript, dict display,
           ``.get``/``.setdefault``/``.pop``, ``lru_cache`` argument)
``CT103``  ``==``/``!=`` on secret-derived values — use
           ``hmac.compare_digest`` (or ``protocol.constant_time_equal``)
``CT104``  secret reaches logging, string formatting, or serialization
           (``print``/loggers, f-strings, ``%``/``.format``, ``pickle``)
========  ====================================================================

**Repo contracts**

========  ====================================================================
``RC201``  ``random.Random()`` / bare ``random``-module draws — secrets must
           come from the ``resolve_rng`` seam (``SystemRandom`` default)
``RC202``  wire-serialization functions touching raw resident ``.value``
           representations instead of the ``field.enter``/``exit`` funnels
``RC203``  RNG resolved more than once per entry point (``resolve_rng``
           inside a loop, or repeatedly in one batch entry point)
``RC204``  synchronous heavy crypto call on the asyncio event loop in
           ``repro.serve`` outside the executor seam
========  ====================================================================

Rules are deliberately small, separately testable, and registered in
:data:`ALL_RULES`; the engine applies suppressions and the baseline on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro.audit.taint import ModuleTaint, _call_name
from repro.audit.vocabulary import (
    EXECUTOR_SEAM_NAMES,
    FUNNEL_CALL_NAMES,
    HEAVY_ASYNC_CALLS,
    LOG_SINK_NAMES,
    PICKLE_SINK_NAMES,
    RNG_DRAW_METHODS,
    SERVE_MODULE_RE,
    VETTED_TAINT_MODULES,
    WIRE_FUNCTION_RE,
    BATCH_FUNCTION_RE,
)

__all__ = ["Finding", "Rule", "ALL_RULES", "RULE_IDS", "rule_table"]


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    context: str = ""  # enclosing qualname, e.g. "ServeClient.key_agreement_session"
    #: set by the engine after suppression/baseline matching
    status: str = field(default="new", compare=False)  # new | suppressed | baselined

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "status": self.status,
        }


class Rule:
    """Base: subclasses set ``id``/``title`` and implement ``run``."""

    id: str = ""
    title: str = ""
    needs_taint = False

    def run(self, module: ModuleTaint) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, module: ModuleTaint, node: ast.AST, message: str, context: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            context=context,
        )


def _walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[str, ast.AST, Optional[str]]]:
    """Yield ``(qualname, function node, enclosing class)`` for every def.

    The module body itself is yielded first as ``("<module>", tree, None)``
    so module-level statements are scanned too.
    """
    yield "<module>", tree, None

    def recurse(node: ast.AST, prefix: str, cls: Optional[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child, cls
                yield from recurse(child, f"{qualname}.", cls)
            elif isinstance(child, ast.ClassDef):
                yield from recurse(child, f"{prefix}{child.name}.", child.name)
            else:
                yield from recurse(child, prefix, cls)

    yield from recurse(tree, "", None)


def _own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's nodes without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _module_statements(tree: ast.AST) -> Iterator[ast.AST]:
    """Top-level statements only (no function/class bodies)."""
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        yield from (
            node
            for node in ast.walk(stmt)
            if node is not stmt
        )


# -- CT1xx: taint sinks ---------------------------------------------------------


class SecretBranchRule(Rule):
    id = "CT101"
    title = "secret-dependent control flow"
    needs_taint = True

    def run(self, module: ModuleTaint) -> List[Finding]:
        if module.path in VETTED_TAINT_MODULES:
            return []
        findings: List[Finding] = []
        flagged_compares = _flagged_equality_compares(module)
        for qualname, func, _cls in _walk_functions(module.tree):
            nodes = (
                _module_statements(module.tree)
                if qualname == "<module>"
                else _own_statements(func)
            )
            for node in nodes:
                condition: Optional[ast.AST] = None
                what = ""
                if isinstance(node, (ast.If, ast.While)):
                    condition, what = node.test, "branch condition"
                elif isinstance(node, ast.IfExp):
                    condition, what = node.test, "conditional expression"
                elif isinstance(node, ast.Assert):
                    condition, what = node.test, "assertion"
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if module.is_tainted(node.iter):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                "loop iterates over a secret-derived sequence "
                                "(data-dependent trip count/order)",
                                qualname,
                            )
                        )
                    continue
                if condition is None or not module.is_tainted(condition):
                    continue
                # An equality compare already reported as CT103 has the same
                # remediation (compare_digest); don't double-report.
                if any(
                    id(sub) in flagged_compares
                    for sub in ast.walk(condition)
                ):
                    continue
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"secret-dependent {what}: control flow outside the "
                        "vetted ladder strategies must not depend on key material",
                        qualname,
                    )
                )
        return findings


def _flagged_equality_compares(module: ModuleTaint) -> Set[int]:
    """ids of Compare nodes the CT103 rule reports for this module."""
    flagged: Set[int] = set()
    for node in ast.walk(module.tree):
        if _is_ct103_compare(module, node):
            flagged.add(id(node))
    return flagged


def _is_ct103_compare(module: ModuleTaint, node: ast.AST) -> bool:
    if not isinstance(node, ast.Compare):
        return False
    if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
        return False
    operands = [node.left] + list(node.comparators)
    if not any(module.is_tainted(operand) for operand in operands):
        return False
    # ``secret == 0``-style guards against small integer constants are a
    # control-flow question (CT101 reports them), not a byte-comparison
    # oracle; CT103 is about comparing secret-derived strings of bytes.
    untainted = [op for op in operands if not module.is_tainted(op)]
    if untainted and all(
        isinstance(op, ast.Constant) and (op.value is None or isinstance(op.value, (int, bool)))
        for op in untainted
    ):
        return False
    return True


class SecretKeyLookupRule(Rule):
    id = "CT102"
    title = "secret used as container or cache key"
    needs_taint = True

    _KEYED_METHODS = frozenset({"get", "setdefault", "pop"})

    def run(self, module: ModuleTaint) -> List[Finding]:
        if module.path in VETTED_TAINT_MODULES:
            return []
        findings: List[Finding] = []
        for qualname, func, _cls in _walk_functions(module.tree):
            nodes = (
                _module_statements(module.tree)
                if qualname == "<module>"
                else _own_statements(func)
            )
            for node in nodes:
                if isinstance(node, ast.Subscript) and module.is_tainted(node.slice):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "secret-derived value used as a subscript key "
                            "(table index/cache key leaks through access pattern)",
                            qualname,
                        )
                    )
                elif isinstance(node, ast.Dict):
                    for key in node.keys:
                        if key is not None and module.is_tainted(key):
                            findings.append(
                                self.finding(
                                    module,
                                    key,
                                    "secret-derived value used as a dict key",
                                    qualname,
                                )
                            )
                elif isinstance(node, ast.Call):
                    name = _call_name(node.func)
                    if (
                        name in self._KEYED_METHODS
                        and isinstance(node.func, ast.Attribute)
                        and node.args
                        and module.is_tainted(node.args[0])
                    ):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"secret-derived value passed as the key of .{name}()",
                                qualname,
                            )
                        )
                    elif (
                        name in module.cached_functions
                        and any(module.is_tainted(arg) for arg in node.args)
                    ):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"secret-derived argument reaches memoized function "
                                f"{name!r} (process-wide cache keyed by a secret)",
                                qualname,
                            )
                        )
        return findings


class SecretEqualityRule(Rule):
    id = "CT103"
    title = "non-constant-time comparison of secret-derived values"
    needs_taint = True

    def run(self, module: ModuleTaint) -> List[Finding]:
        if module.path in VETTED_TAINT_MODULES:
            return []
        findings: List[Finding] = []
        for qualname, func, _cls in _walk_functions(module.tree):
            nodes = (
                _module_statements(module.tree)
                if qualname == "<module>"
                else _own_statements(func)
            )
            for node in nodes:
                if _is_ct103_compare(module, node):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "==/!= on secret-derived bytes is a timing oracle; "
                            "use hmac.compare_digest "
                            "(repro.serve.protocol.constant_time_equal)",
                            qualname,
                        )
                    )
        return findings


class SecretExposureRule(Rule):
    id = "CT104"
    title = "secret reaches logging/formatting/serialization"
    needs_taint = True

    def run(self, module: ModuleTaint) -> List[Finding]:
        if module.path in VETTED_TAINT_MODULES:
            return []
        findings: List[Finding] = []
        for qualname, func, _cls in _walk_functions(module.tree):
            nodes = (
                _module_statements(module.tree)
                if qualname == "<module>"
                else _own_statements(func)
            )
            for node in nodes:
                if isinstance(node, ast.Call):
                    self._check_call(module, node, qualname, findings)
                elif isinstance(node, ast.JoinedStr) and module.is_tainted(node):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "secret-derived value interpolated into an f-string",
                            qualname,
                        )
                    )
                elif (
                    isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Mod)
                    and isinstance(node.left, ast.Constant)
                    and isinstance(node.left.value, str)
                    and module.is_tainted(node.right)
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "secret-derived value interpolated by %-formatting",
                            qualname,
                        )
                    )
        return findings

    def _check_call(
        self,
        module: ModuleTaint,
        node: ast.Call,
        qualname: str,
        findings: List[Finding],
    ) -> None:
        name = _call_name(node.func)
        args_tainted = any(module.is_tainted(arg) for arg in node.args) or any(
            module.is_tainted(keyword.value) for keyword in node.keywords
        )
        if not args_tainted:
            # ``secret_bytes.format(...)``-style receivers don't occur; the
            # formatting sinks below all take the secret as an argument.
            return
        if name in LOG_SINK_NAMES:
            findings.append(
                self.finding(
                    module,
                    node,
                    f"secret-derived value passed to logging sink {name}()",
                    qualname,
                )
            )
        elif name in PICKLE_SINK_NAMES and _receiver_module(node) in (
            "pickle",
            "marshal",
            "json",
            None,
        ):
            # bare dumps()/dump() or pickle.dumps(...): serialized secrets
            # escape the process boundary.
            if _receiver_module(node) is None and not isinstance(node.func, ast.Name):
                return
            findings.append(
                self.finding(
                    module,
                    node,
                    "secret-derived value serialized "
                    f"({_receiver_module(node) or 'bare'} {name}()) — "
                    "key material escaping the process must be deliberate",
                    qualname,
                )
            )
        elif name in ("format", "format_map") and isinstance(node.func, ast.Attribute):
            findings.append(
                self.finding(
                    module,
                    node,
                    "secret-derived value interpolated by str.format()",
                    qualname,
                )
            )
        elif name in ("repr", "str", "ascii") and isinstance(node.func, ast.Name):
            findings.append(
                self.finding(
                    module,
                    node,
                    f"secret-derived value stringified by {name}()",
                    qualname,
                )
            )


def _receiver_module(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
        return node.func.value.id
    return None


# -- RC2xx: repo contracts ------------------------------------------------------


class RngHygieneRule(Rule):
    id = "RC201"
    title = "bare random-module RNG use"

    _BANNED_MODULE_CALLS = RNG_DRAW_METHODS | {
        "seed",
        "shuffle",
        "sample",
        "uniform",
        "choices",
    }

    def run(self, module: ModuleTaint) -> List[Finding]:
        findings: List[Finding] = []
        for qualname, func, _cls in _walk_functions(module.tree):
            nodes = (
                _module_statements(module.tree)
                if qualname == "<module>"
                else _own_statements(func)
            )
            for node in nodes:
                if not isinstance(node, ast.Call):
                    continue
                func_node = node.func
                if (
                    isinstance(func_node, ast.Attribute)
                    and isinstance(func_node.value, ast.Name)
                    and func_node.value.id == "random"
                ):
                    if func_node.attr == "Random":
                        findings.append(
                            self.finding(
                                module,
                                node,
                                "random.Random() constructs the Mersenne Twister; "
                                "secrets must come from resolve_rng (SystemRandom "
                                "default) — inject a seeded generator explicitly "
                                "only for reproducibility",
                                qualname,
                            )
                        )
                    elif func_node.attr in self._BANNED_MODULE_CALLS:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"bare random.{func_node.attr}() draws from the "
                                "process-global Mersenne Twister; route through "
                                "resolve_rng",
                                qualname,
                            )
                        )
                elif (
                    isinstance(func_node, ast.Name)
                    and func_node.id == "Random"
                    and _imports_name_from(module.tree, "random", "Random")
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "Random() (imported from random) constructs the "
                            "Mersenne Twister; secrets must come from resolve_rng",
                            qualname,
                        )
                    )
        return findings


def _imports_name_from(tree: ast.AST, module_name: str, name: str) -> bool:
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            if any(alias.name == name for alias in node.names):
                return True
    return False


class WireFunnelRule(Rule):
    id = "RC202"
    title = "wire function bypasses the enter/exit funnels"

    def run(self, module: ModuleTaint) -> List[Finding]:
        findings: List[Finding] = []
        for qualname, func, _cls in _walk_functions(module.tree):
            if qualname == "<module>":
                continue
            name = func.name if hasattr(func, "name") else ""
            if not WIRE_FUNCTION_RE.search(name):
                continue
            blessed: Set[int] = set()
            for node in _own_statements(func):
                if isinstance(node, ast.Call):
                    call_name = _call_name(node.func)
                    if call_name in FUNNEL_CALL_NAMES or (
                        call_name and WIRE_FUNCTION_RE.search(call_name)
                    ):
                        for arg in node.args:
                            if (
                                isinstance(arg, ast.Attribute)
                                and arg.attr == "value"
                            ):
                                blessed.add(id(arg))
            for node in _own_statements(func):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == "value"
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in blessed
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "raw resident `.value` representation used inside a "
                            "wire-serialization function; route through the "
                            "field.enter/field.exit funnels so Montgomery "
                            "residents encode correctly",
                            qualname,
                        )
                    )
        return findings


class RngResolveOnceRule(Rule):
    id = "RC203"
    title = "RNG resolved more than once per entry point"

    def run(self, module: ModuleTaint) -> List[Finding]:
        findings: List[Finding] = []
        for qualname, func, _cls in _walk_functions(module.tree):
            if qualname == "<module>":
                continue
            resolve_sites: List[ast.Call] = []
            for node in _own_statements(func):
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    for inner in ast.walk(node):
                        if inner is node:
                            continue
                        if (
                            isinstance(inner, ast.Call)
                            and _call_name(inner.func) == "resolve_rng"
                        ):
                            findings.append(
                                self.finding(
                                    module,
                                    inner,
                                    "resolve_rng called inside a loop; batch "
                                    "entry points resolve the RNG exactly once "
                                    "and thread it down",
                                    qualname,
                                )
                            )
                elif (
                    isinstance(node, ast.Call)
                    and _call_name(node.func) == "resolve_rng"
                ):
                    resolve_sites.append(node)
            name = getattr(func, "name", "")
            if BATCH_FUNCTION_RE.search(name) and len(resolve_sites) > 1:
                findings.append(
                    self.finding(
                        module,
                        resolve_sites[1],
                        f"batch entry point {name!r} resolves the RNG "
                        f"{len(resolve_sites)} times; resolve once at the top",
                        qualname,
                    )
                )
        return findings


class EventLoopHeavyCallRule(Rule):
    id = "RC204"
    title = "heavy synchronous call on the serve event loop"

    def run(self, module: ModuleTaint) -> List[Finding]:
        if not SERVE_MODULE_RE.search(module.path):
            return []
        findings: List[Finding] = []
        for qualname, func, _cls in _walk_functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            seam_args: Set[int] = set()
            for node in _own_statements(func):
                if isinstance(node, ast.Call) and _call_name(node.func) in (
                    EXECUTOR_SEAM_NAMES
                ):
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            seam_args.add(id(sub))
            for node in _own_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node.func)
                if name in HEAVY_ASYNC_CALLS and id(node) not in seam_args:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"synchronous {name}() on the event loop: group "
                            "arithmetic stalls every connection — ship it "
                            "through run_in_executor (the scheduler seam)",
                            qualname,
                        )
                    )
        return findings


ALL_RULES: "List[Rule]" = [
    SecretBranchRule(),
    SecretKeyLookupRule(),
    SecretEqualityRule(),
    SecretExposureRule(),
    RngHygieneRule(),
    WireFunnelRule(),
    RngResolveOnceRule(),
    EventLoopHeavyCallRule(),
]

RULE_IDS = frozenset(rule.id for rule in ALL_RULES) | {
    # meta findings emitted by the engine itself
    "AUD001",  # unparseable source file
    "AUD002",  # unknown rule id inside an allow[...] marker
    "AUD003",  # allow marker without a reason
    "AUD004",  # allow marker that suppressed nothing (strict mode)
}


def rule_table() -> List[Tuple[str, str]]:
    """``(id, title)`` rows for ``--list-rules`` and the README."""
    rows = [(rule.id, rule.title) for rule in ALL_RULES]
    rows += [
        ("AUD001", "source file failed to parse"),
        ("AUD002", "unknown rule id in an allow[...] marker"),
        ("AUD003", "allow marker without a reason"),
        ("AUD004", "allow marker that suppressed nothing (strict)"),
    ]
    return rows
