"""The analyzer's shared vocabulary: sources, propagators, sinks, patterns.

Everything name-based about the analysis lives here, in one place, so the
taint engine and the rule pack stay mechanism and this file stays policy.
The lists encode how taint crosses *call boundaries* without whole-program
type inference:

* **Secret-returning callables** (:data:`SECRET_RETURNING`) — calling any
  of these names (as a function or a method) yields key material: RNG
  sampling, key generation, shared-secret derivation.  The set is extended
  per run by ``Secret[...]``-annotated return types and ``# audit: secret``
  markers on ``def`` lines.

* **Propagators** (:data:`PROPAGATORS`) — calls whose result is secret
  exactly when an argument is: conversions, hashes and KDFs.  Hashing does
  *not* launder a secret for comparison purposes — comparing an
  attacker-supplied guess against a secret-derived digest byte-by-byte is
  precisely the timing oracle ``hmac.compare_digest`` exists for.

* **Everything else is an optimistic boundary.**  ``exponentiate(g, k)``
  with a secret ``k`` returns a *public* group element (that is what makes
  it public-key cryptography), so generic calls do not propagate taint.
  Helpers that genuinely return key material must be named in
  :data:`SECRET_RETURNING`, annotated ``-> Secret[...]``, or marked
  ``# audit: secret`` — the optimistic default is documented policy, not an
  oversight.
"""

from __future__ import annotations

import re

__all__ = [
    "SECRET_RETURNING",
    "RNG_DRAW_METHODS",
    "RNG_RECEIVER_NAMES",
    "PROPAGATORS",
    "SANITIZERS",
    "PUBLIC_ATTRS",
    "SECRET_ATTRS",
    "LOG_SINK_NAMES",
    "PICKLE_SINK_NAMES",
    "FORMAT_SINK_NAMES",
    "HEAVY_ASYNC_CALLS",
    "EXECUTOR_SEAM_NAMES",
    "WIRE_FUNCTION_RE",
    "BATCH_FUNCTION_RE",
    "FUNNEL_CALL_NAMES",
    "VETTED_TAINT_MODULES",
    "SERVE_MODULE_RE",
]

#: Callables (function or method names) whose return value is key material.
SECRET_RETURNING = frozenset(
    {
        "sample_exponent",
        "keygen",
        "keygen_many",
        "key_agreement",
        "key_agreement_many",
        "key_agreement_with_many",
        "shared_secret",
        "shared_secret_many",
        "shared_secret_with_many",
        "derive_key",
        "derive_key_many",
        "derive_key_with_many",
        "ecdh_shared_secret",
        "ecdh_shared_secret_many",
        "ecdh_shared_secret_with_many",
        "ecdh_generate",
        "rsa_generate",
        "generate_keypair",
        "decrypt",
        "open_body",
        "kdf",
        # Channel-layer derivations: both halves of a channel handshake end
        # in key material (directional keystream/tag keys, the bootstrap
        # secret the client encrypts to the server).
        "derive_channel_keys",
        "channel_bootstrap",
    }
)

#: Drawing methods on a ``random.Random``-shaped generator.  A draw is a
#: secret when the generator reached the call through the library's RNG
#: seam (``resolve_rng`` / an ``rng`` parameter) — the sources the issue
#: names — not when some unrelated object happens to share a method name.
RNG_DRAW_METHODS = frozenset(
    {"randrange", "randint", "getrandbits", "randbytes", "choice", "random"}
)

#: Receiver names treated as the library RNG seam for :data:`RNG_DRAW_METHODS`.
RNG_RECEIVER_NAMES = re.compile(r"(^|_)rng$", re.IGNORECASE)

#: Calls through which taint flows from argument to result.
PROPAGATORS = frozenset(
    {
        # conversions and structure
        "int",
        "bytes",
        "bytearray",
        "tuple",
        "list",
        "abs",
        "pow",
        "divmod",
        "min",
        "max",
        "sum",
        "to_bytes",
        "from_bytes",
        "join",
        "hex",
        "fromhex",
        "enumerate",
        "zip",
        "reversed",
        "sorted",
        # hashing / derivation: a digest of a secret is still secret-derived
        # for comparison and logging purposes (timing oracles, leakage).
        "sha256",
        "sha512",
        "sha1",
        "md5",
        "blake2b",
        "blake2s",
        "new",
        "digest",
        "hexdigest",
        "update",
        "confirmation_tag",
        "seal_body",
        # representation funnels preserve the value, hence the taint
        "enter",
        "exit",
        "embed",
        "copy",
        "deepcopy",
        "dumps",  # pickle/json serialization of a secret stays secret
        "encode_compressed",
        "encode_fp6",
        "encode_point",
        "encode_scalar_pair",
    }
)

#: Calls whose result is public whatever went in: cardinalities, type
#: tests, identity, and the one vetted comparator.
SANITIZERS = frozenset(
    {
        "len",
        "type",
        "isinstance",
        "issubclass",
        "id",
        "range",
        "bit_length",
        "compare_digest",
        "constant_time_equal",
    }
)

#: Attribute names that *declassify*: reading these from a tainted object
#: yields public data (the public half of a key pair, sizes, names).
PUBLIC_ATTRS = frozenset(
    {
        "public",
        "public_wire",
        "public_key",
        "public_key_bytes",
        "public_bytes",
        "scheme",
        "name",
        "curve",
        "params",
        "group",
        "field",
        "modulus_bits",
        "n",
        "e",
    }
)

#: Attribute names that are secret wherever they appear — unambiguous key
#: material carriers.  Short/ambiguous names (``p``, ``q``, ``d`` — also a
#: field modulus and prime factors elsewhere) are deliberately absent;
#: those taint only through a tainted object or a ``Secret[...]``
#: annotation on their class.
SECRET_ATTRS = frozenset(
    {"private", "private_key", "secret_exponent", "secret_scalar"}
)

#: Logging/warnings callables (bare or as attributes: ``logger.info``).
LOG_SINK_NAMES = frozenset(
    {
        "print",
        "debug",
        "info",
        "warning",
        "warn",
        "error",
        "exception",
        "critical",
        "log",
    }
)

#: Pickle entry points — serialized secrets escape the process.
PICKLE_SINK_NAMES = frozenset({"dumps", "dump"})

#: String-formatting callables that interpolate their arguments.
FORMAT_SINK_NAMES = frozenset({"format", "repr", "str", "ascii", "format_map"})

#: Calls that execute group/field arithmetic or whole protocol operations —
#: heavy, synchronous work that must not run on the serve event loop.
HEAVY_ASYNC_CALLS = frozenset(
    {
        "keygen",
        "keygen_many",
        "key_agreement",
        "key_agreement_many",
        "key_agreement_with_many",
        "encrypt",
        "decrypt",
        "sign",
        "sign_many",
        "verify",
        "serve_request",
        "serve_request_batch",
        "server_key",
        "pickled_server_key",
        "exponentiate",
        "exponentiate_many",
        "exponentiate_shared_base",
        "scalar_mult",
        "scalar_mult_many",
        "montgomery_power",
        "montgomery_power_many",
        "run_batch",
        "run_batch_parallel",
        "build_profile",
    }
)

#: Call names that form the executor seam: a heavy call passed *into* one
#: of these runs in the pool, not on the loop.
EXECUTOR_SEAM_NAMES = frozenset(
    {"run_in_executor", "to_thread", "submit", "map"}
)

#: Function names treated as wire-serialization boundaries for RC202.
WIRE_FUNCTION_RE = re.compile(
    r"(^|_)(encode|decode|serialize|deserialize|pack|unpack)(_|$)|wire|to_bytes|from_bytes"
)

#: Function names treated as batch entry points for RC203's exactly-once
#: RNG resolution contract.
BATCH_FUNCTION_RE = re.compile(r"(_many|_batch|^run_batch|^batch_|_with_many)")

#: Calls that legitimately consume a raw resident representation inside a
#: wire function: the representation funnels themselves plus the
#: compression/encode helpers that funnel internally.
FUNNEL_CALL_NAMES = frozenset(
    {
        "enter",
        "exit",
        "embed",
        "one_value",
        "compress",
        "decompress",
        "contains_raw",
        "trace_of_fp6",
    }
)

#: Modules (paths relative to the scanned root) where secret-dependent
#: control flow is the *documented algorithm*: the strategy kernel hosts
#: every vetted ladder, and its digit recodings/table walks are exactly the
#: place exponent bits are allowed to steer execution.  The README states
#: the honest caveat: only the ``ladder`` strategy has a constant-time
#: *shape*; wNAF/fixed-base are fast paths, and this allowlist encodes
#: policy, not a proof.
VETTED_TAINT_MODULES = frozenset({"exp/strategies.py"})

#: Modules the RC204 event-loop rule applies to.
SERVE_MODULE_RE = re.compile(r"^serve/")
