"""Accepted-findings baseline: fingerprints, load/save, matching.

The committed ``AUDIT_baseline.json`` records findings that were reviewed
and accepted wholesale (legacy debt, deliberate design).  A finding's
fingerprint deliberately excludes line and column numbers::

    sha256("rule|path|context|message")[:16] + ":" + occurrence_index

so unrelated edits above a finding don't churn the baseline; only moving a
finding to a different function (context) or changing its message rotates
the fingerprint.  Duplicate findings in the same (rule, path, context,
message) bucket are disambiguated by their index in source order.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.audit.rules import Finding

__all__ = [
    "fingerprint_base",
    "assign_fingerprints",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1


def fingerprint_base(finding: Finding) -> str:
    """The line-independent hash bucket a finding falls into."""
    material = "|".join(
        (finding.rule, finding.path, finding.context, finding.message)
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(findings: Iterable[Finding]) -> List[Tuple[Finding, str]]:
    """Pair each finding with its full ``base:index`` fingerprint.

    Findings sharing a bucket are indexed in (line, col) order so the
    fingerprints are stable across runs on the same tree.
    """
    buckets: Dict[str, List[Finding]] = {}
    for finding in findings:
        buckets.setdefault(fingerprint_base(finding), []).append(finding)
    pairs: List[Tuple[Finding, str]] = []
    for base, members in buckets.items():
        members.sort(key=lambda f: (f.line, f.col))
        for index, finding in enumerate(members):
            pairs.append((finding, f"{base}:{index}"))
    pairs.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].col))
    return pairs


def load_baseline(path: Path) -> Dict[str, dict]:
    """The accepted fingerprints, or ``{}`` when no baseline exists."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"{path}: not an audit baseline file")
    return dict(data["fingerprints"])


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write every *non-suppressed* finding as accepted; return the count."""
    entries: Dict[str, dict] = {}
    for finding, fingerprint in assign_fingerprints(
        [f for f in findings if f.status != "suppressed"]
    ):
        entries[fingerprint] = {
            "rule": finding.rule,
            "path": finding.path,
            "context": finding.context,
            "message": finding.message,
        }
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(entries.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def apply_baseline(findings: List[Finding], baseline: Dict[str, dict]) -> None:
    """Flip matched findings to ``baselined`` in place.

    Suppressed findings never consume a baseline slot — an inline allow is
    the closer-to-the-code mechanism and wins.
    """
    for finding, fingerprint in assign_fingerprints(
        [f for f in findings if f.status != "suppressed"]
    ):
        if fingerprint in baseline:
            finding.status = "baselined"
