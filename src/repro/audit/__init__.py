"""repro.audit — secret-flow / constant-time static analysis for this repo.

Run it as ``python -m repro.audit`` (add ``--strict`` for the CI gate, or
``--list-rules`` for the rule table).  Code under audit talks back through
:data:`Secret` annotations and ``# audit:`` markers — see
:mod:`repro.audit.annotations`.
"""

from repro.audit.annotations import SECRET_TAG, Secret
from repro.audit.engine import AuditResult, run_audit
from repro.audit.rules import ALL_RULES, RULE_IDS, Finding

__all__ = [
    "Secret",
    "SECRET_TAG",
    "Finding",
    "ALL_RULES",
    "RULE_IDS",
    "AuditResult",
    "run_audit",
]
