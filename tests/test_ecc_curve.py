"""Tests for the Weierstrass curve object."""

import pytest

from repro.errors import NotOnCurveError, ParameterError
from repro.field.fp import PrimeField
from repro.ecc.curve import WeierstrassCurve


@pytest.fixture(scope="module")
def curve():
    return WeierstrassCurve(PrimeField(1009), a=3, b=7)


class TestConstruction:
    def test_rejects_singular_curve(self):
        field = PrimeField(1009)
        with pytest.raises(ParameterError):
            WeierstrassCurve(field, a=0, b=0)

    def test_rejects_tiny_characteristic(self):
        with pytest.raises(ParameterError):
            WeierstrassCurve(PrimeField(3), a=1, b=1)

    def test_equality(self):
        field = PrimeField(1009)
        assert WeierstrassCurve(field, 3, 7) == WeierstrassCurve(field, 3, 7)
        assert WeierstrassCurve(field, 3, 7) != WeierstrassCurve(field, 3, 8)


class TestPointPredicates:
    def test_is_on_curve(self, curve, rng):
        x, y = curve.random_point(rng)
        assert curve.is_on_curve(x, y)
        assert not curve.is_on_curve(x, y + 1)

    def test_lift_x(self, curve, rng):
        x, y = curve.random_point(rng)
        roots = curve.lift_x(x)
        assert y in roots
        assert all(curve.is_on_curve(x, candidate) for candidate in roots)

    def test_lift_x_non_residue(self, curve):
        found = False
        for x in range(200):
            rhs = curve.right_hand_side(x)
            if rhs != 0 and not curve.field.is_square(rhs):
                with pytest.raises(NotOnCurveError):
                    curve.lift_x(x)
                found = True
                break
        assert found

    def test_j_invariant_defined(self, curve):
        assert 0 <= curve.j_invariant() < curve.field.p


class TestPointCounting:
    def test_hasse_bound(self, curve):
        order = curve.count_points_naive()
        p = curve.field.p
        assert abs(order - (p + 1)) <= 2 * int(p ** 0.5) + 1

    def test_counts_match_on_known_small_curve(self):
        # E: y^2 = x^3 + x + 1 over F_5 has 9 points (including infinity).
        curve = WeierstrassCurve(PrimeField(5), 1, 1)
        assert curve.count_points_naive() == 9

    def test_naive_count_refuses_large_fields(self, toy32_params):
        curve = WeierstrassCurve(PrimeField(toy32_params.p), 1, 1)
        with pytest.raises(ParameterError):
            curve.count_points_naive()
