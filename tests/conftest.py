"""Shared fixtures for the test suite.

Expensive objects (the 170-bit torus group, the platform with its
cycle-accurate engines) are session-scoped; tests that need isolation build
their own throwaway instances at toy sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.ecc.curves import generate_toy_curve
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.soc.system import Platform, PlatformConfig
from repro.torus.params import get_parameters
from repro.torus.t6 import T6Group


@pytest.fixture
def rng():
    """A deterministic RNG so failures are reproducible."""
    return random.Random(0xCE111D)


@pytest.fixture(scope="session")
def toy20_params():
    return get_parameters("toy-20")


@pytest.fixture(scope="session")
def toy32_params():
    return get_parameters("toy-32")


@pytest.fixture(scope="session")
def toy64_params():
    return get_parameters("toy-64")


@pytest.fixture(scope="session")
def ceilidh170_params():
    return get_parameters("ceilidh-170")


@pytest.fixture(scope="session")
def toy32_group(toy32_params):
    return T6Group(toy32_params, validate=True)


@pytest.fixture(scope="session")
def toy20_group(toy20_params):
    return T6Group(toy20_params, validate=True)


@pytest.fixture(scope="session")
def ceilidh170_group(ceilidh170_params):
    return T6Group(ceilidh170_params)


@pytest.fixture(scope="session")
def toy32_field(toy32_params):
    return PrimeField(toy32_params.p)


@pytest.fixture(scope="session")
def toy32_fp6(toy32_field):
    return make_fp6(toy32_field)


@pytest.fixture(scope="session")
def toy_curve():
    """A small curve (p = 1009) with exhaustively verified group order."""
    return generate_toy_curve(1009, random.Random(7))


@pytest.fixture(scope="session")
def platform():
    """A default platform shared by the SoC tests (engines are cached inside)."""
    return Platform()


@pytest.fixture(scope="session")
def small_platform():
    """A platform with a small word size for fast cycle-accurate runs."""
    return Platform(PlatformConfig(word_bits=16, num_cores=2))
