"""The unified PKC layer: registry, capabilities and protocol behaviour.

One parametrised loop drives every registered scheme through every protocol
it advertises — the same generic call path the benchmarks and examples use —
plus negative-path checks (tampering, wrong keys, unsupported operations).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    DecryptionError,
    ParameterError,
    UnsupportedOperationError,
)
from repro.exp.trace import OpTrace
from repro.pkc import (
    ENCRYPTION,
    KEY_AGREEMENT,
    SIGNATURE,
    available_schemes,
    get_scheme,
)

#: Schemes small enough (or cached enough) for the full protocol matrix.
FAST_SCHEMES = ["ceilidh-toy32", "ceilidh-toy64", "xtr-toy32", "rsa-512", "ecdh-p160"]

MESSAGE = b"the quick brown fox, on a torus"


@pytest.fixture
def rng():
    return random.Random(0x5EED)


class TestRegistry:
    def test_all_four_cryptosystems_registered(self):
        names = available_schemes()
        for required in ("ceilidh-170", "ecdh-p160", "rsa-1024", "xtr-170"):
            assert required in names

    def test_unknown_name_raises_with_inventory(self):
        with pytest.raises(ParameterError, match="available"):
            get_scheme("dsa-1024")

    def test_instances_are_cached_unless_fresh(self):
        assert get_scheme("ceilidh-toy32") is get_scheme("ceilidh-toy32")
        assert get_scheme("ceilidh-toy32") is not get_scheme("ceilidh-toy32", fresh=True)

    def test_paper_rows_carry_paper_times(self):
        assert get_scheme("ceilidh-170").paper_ms == 20.0
        assert get_scheme("rsa-1024").paper_ms == 96.0
        assert get_scheme("ecdh-p160").paper_ms == 9.4
        assert get_scheme("xtr-170").paper_ms is None

    def test_capability_sets(self):
        assert get_scheme("xtr-toy32").capabilities == {KEY_AGREEMENT}
        assert get_scheme("rsa-512").capabilities == {ENCRYPTION, SIGNATURE}
        assert get_scheme("ceilidh-toy32").capabilities == {
            KEY_AGREEMENT,
            ENCRYPTION,
            SIGNATURE,
        }


@pytest.mark.parametrize("name", FAST_SCHEMES)
class TestProtocolMatrix:
    """Generic protocol round trips — no scheme-specific branches."""

    def test_keygen_produces_wire_sized_public(self, name, rng):
        scheme = get_scheme(name)
        keypair = scheme.keygen(rng)
        assert keypair.scheme == scheme.name
        assert len(keypair.public_wire) == scheme.public_key_size()

    def test_key_agreement_agrees(self, name, rng):
        scheme = get_scheme(name)
        if KEY_AGREEMENT not in scheme.capabilities:
            pytest.skip(f"{name} has no key agreement")
        alice, bob = scheme.keygen(rng), scheme.keygen(rng)
        assert scheme.key_agreement(alice, bob.public_wire) == scheme.key_agreement(
            bob, alice.public_wire
        )

    def test_key_agreement_binds_info_and_peer(self, name, rng):
        scheme = get_scheme(name)
        if KEY_AGREEMENT not in scheme.capabilities:
            pytest.skip(f"{name} has no key agreement")
        alice, bob, eve = (scheme.keygen(rng) for _ in range(3))
        base = scheme.key_agreement(alice, bob.public_wire)
        assert scheme.key_agreement(alice, bob.public_wire, info=b"x") != base
        assert scheme.key_agreement(alice, eve.public_wire) != base

    def test_encryption_round_trip_and_tamper_detection(self, name, rng):
        scheme = get_scheme(name)
        if ENCRYPTION not in scheme.capabilities:
            pytest.skip(f"{name} has no encryption")
        keypair = scheme.keygen(rng)
        ciphertext = scheme.encrypt(keypair.public_wire, MESSAGE, rng)
        assert scheme.decrypt(keypair, ciphertext) == MESSAGE
        corrupted = ciphertext[:-1] + bytes([ciphertext[-1] ^ 1])
        with pytest.raises(DecryptionError):
            scheme.decrypt(keypair, corrupted)

    def test_signature_round_trip_and_rejection(self, name, rng):
        scheme = get_scheme(name)
        if SIGNATURE not in scheme.capabilities:
            pytest.skip(f"{name} has no signatures")
        keypair = scheme.keygen(rng)
        signature = scheme.sign(keypair, MESSAGE, rng)
        assert scheme.verify(keypair.public_wire, MESSAGE, signature)
        assert not scheme.verify(keypair.public_wire, MESSAGE + b"!", signature)
        assert not scheme.verify(keypair.public_wire, MESSAGE, signature[:-1])
        # Malformed public-key bytes must report False, never raise.
        assert not scheme.verify(b"\x00\x01\x02", MESSAGE, signature)
        # A fresh adapter sidesteps per-scheme key caching (RSA), and a
        # differently-seeded rng keeps the draw from reproducing the same key.
        other = get_scheme(name, fresh=True).keygen(random.Random(0xD1FF))
        assert not scheme.verify(other.public_wire, MESSAGE, signature)

    def test_unsupported_operations_raise(self, name, rng):
        scheme = get_scheme(name)
        keypair = scheme.keygen(rng)
        if KEY_AGREEMENT not in scheme.capabilities:
            with pytest.raises(UnsupportedOperationError):
                scheme.key_agreement(keypair, keypair.public_wire)
        if ENCRYPTION not in scheme.capabilities:
            with pytest.raises(UnsupportedOperationError):
                scheme.encrypt(keypair.public_wire, MESSAGE, rng)
        if SIGNATURE not in scheme.capabilities:
            with pytest.raises(UnsupportedOperationError):
                scheme.sign(keypair, MESSAGE, rng)

    def test_traces_record_group_operations(self, name, rng):
        scheme = get_scheme(name)
        if KEY_AGREEMENT not in scheme.capabilities:
            pytest.skip(f"{name} has no key agreement")
        keygen_trace, agree_trace = OpTrace(), OpTrace()
        alice = scheme.keygen(rng, trace=keygen_trace)
        bob = scheme.keygen(rng)
        scheme.key_agreement(alice, bob.public_wire, trace=agree_trace)
        assert keygen_trace.total > 0
        assert agree_trace.total > 0


class TestSchemeSpecifics:
    def test_rsa_keygen_is_cached_per_adapter(self, rng):
        scheme = get_scheme("rsa-512", fresh=True)
        first = scheme.keygen(rng)
        second = scheme.keygen(rng)
        assert first.native is second.native
        third = scheme.keygen(rng, fresh=True)
        assert third.native is not first.native

    def test_rsa_keygen_traces_no_group_operations(self, rng):
        trace = OpTrace()
        get_scheme("rsa-512").keygen(rng, trace=trace)
        assert trace.total == 0

    def test_ceilidh_wire_matches_legacy_encoding(self, rng):
        from repro.torus.encoding import encode_compressed

        scheme = get_scheme("ceilidh-toy32")
        keypair = scheme.keygen(rng)
        assert keypair.public_wire == encode_compressed(
            scheme.params, keypair.native.public
        )

    def test_xtr_and_ceilidh_share_wire_size(self):
        assert (
            get_scheme("xtr-170").public_key_size()
            == get_scheme("ceilidh-170").public_key_size()
        )

    def test_ecdh_fixed_base_keygen_matches_plain_scalar_mult(self, rng):
        from repro.ecc.scalar import scalar_mult_binary

        scheme = get_scheme("ecdh-p160")
        keypair = scheme.keygen(rng)
        # Build the reference generator on the scheme's own field backend so
        # the comparison stays within one representation.
        _, generator = scheme.curve.build(backend=scheme.field_backend)
        assert keypair.native.public == scalar_mult_binary(
            generator, keypair.native.private
        )

    def test_ecdh_keygen_uses_only_table_multiplications(self, rng):
        scheme = get_scheme("ecdh-p160")
        scheme.keygen(rng)  # ensure the table is built
        trace = OpTrace()
        scheme.keygen(rng, trace=trace)
        assert trace.squarings == 0
        assert trace.multiplications > 0
