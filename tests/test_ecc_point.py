"""Tests for affine/Jacobian point arithmetic."""

import pytest

from repro.errors import NotOnCurveError, ParameterError
from repro.ecc.point import INFINITY, AffinePoint, JacobianPoint


@pytest.fixture(scope="module")
def curve_and_generator(toy_curve):
    return toy_curve.build()


class TestAffineGroupLaw:
    def test_point_validation(self, curve_and_generator):
        curve, generator = curve_and_generator
        with pytest.raises(NotOnCurveError):
            AffinePoint(curve, generator.x, generator.y + 1)

    def test_identity_laws(self, curve_and_generator):
        _, g = curve_and_generator
        assert g + INFINITY == g
        assert INFINITY + g == g
        assert (g + (-g)).is_infinity()

    def test_commutativity(self, curve_and_generator, rng):
        curve, g = curve_and_generator
        h = g.double()
        assert g + h == h + g

    def test_associativity(self, curve_and_generator):
        _, g = curve_and_generator
        a, b, c = g, g.double(), g.double().double()
        assert (a + b) + c == a + (b + c)

    def test_doubling_matches_addition(self, curve_and_generator):
        _, g = curve_and_generator
        assert g.double() == g + g

    def test_subtraction(self, curve_and_generator):
        _, g = curve_and_generator
        assert (g.double() - g) == g

    def test_order_annihilates_generator(self, curve_and_generator, toy_curve):
        _, g = curve_and_generator
        assert (toy_curve.order * g).is_infinity()
        assert not ((toy_curve.order - 1) * g).is_infinity()

    def test_xy_accessor(self, curve_and_generator):
        _, g = curve_and_generator
        assert g.xy() == (g.x, g.y)
        with pytest.raises(ParameterError):
            INFINITY.xy()

    def test_cross_curve_rejected(self, curve_and_generator):
        curve, g = curve_and_generator
        from repro.ecc.curves import generate_toy_curve
        import random

        other_named = generate_toy_curve(1013, random.Random(3))
        _, other_g = other_named.build()
        with pytest.raises(ParameterError):
            _ = g + other_g


class TestJacobianArithmetic:
    def test_roundtrip_affine_jacobian(self, curve_and_generator):
        _, g = curve_and_generator
        assert g.to_jacobian().to_affine() == g

    def test_double_matches_affine(self, curve_and_generator):
        _, g = curve_and_generator
        assert g.to_jacobian().double().to_affine() == g.double()

    def test_add_matches_affine(self, curve_and_generator):
        _, g = curve_and_generator
        h = g.double()
        assert g.to_jacobian().add(h.to_jacobian()).to_affine() == g + h

    def test_add_handles_doubling_case(self, curve_and_generator):
        _, g = curve_and_generator
        assert g.to_jacobian().add(g.to_jacobian()).to_affine() == g.double()

    def test_add_handles_inverse_case(self, curve_and_generator):
        _, g = curve_and_generator
        assert g.to_jacobian().add((-g).to_jacobian()).is_infinity()

    def test_add_identity(self, curve_and_generator):
        curve, g = curve_and_generator
        infinity = JacobianPoint(curve, 1, 1, 0)
        assert infinity.add(g.to_jacobian()).to_affine() == g
        assert g.to_jacobian().add(infinity).to_affine() == g

    def test_double_of_two_torsion(self, curve_and_generator):
        curve, _ = curve_and_generator
        # A point with y = 0 doubles to infinity; construct one if it exists.
        f = curve.field
        for x in range(f.p):
            if curve.right_hand_side(x) == 0:
                point = JacobianPoint(curve, x, 0, 1)
                assert point.double().is_infinity()
                break

    def test_projective_equality(self, curve_and_generator):
        curve, g = curve_and_generator
        f = curve.field
        scaled = JacobianPoint(
            curve, f.mul(g.x, f.mul(4, 1)), f.mul(g.y, 8), 2
        )  # (4X : 8Y : 2Z) represents the same point as (X : Y : Z=1)
        assert scaled == g.to_jacobian()

    def test_non_equal_points(self, curve_and_generator):
        _, g = curve_and_generator
        assert g.to_jacobian() != g.double().to_jacobian()

    def test_random_scalar_chain_consistency(self, curve_and_generator, rng):
        _, g = curve_and_generator
        jacobian = g.to_jacobian()
        affine = g
        for _ in range(8):
            jacobian = jacobian.add(g.to_jacobian())
            affine = affine + g
            assert jacobian.to_affine() == affine
