"""Tests for the core ISA definitions and the memory models."""

import pytest

from repro.errors import AssemblyError, MemoryMapError, ParameterError
from repro.soc.isa import Instruction, Op, addc, cla, ld, mac, sha, st, subb
from repro.soc.memory import DataRam, InstructionRom, MemoryAllocator


class TestInstruction:
    def test_seven_opcodes(self):
        assert len(Op) == 7

    def test_memory_flag(self):
        assert ld(0, 0).uses_memory()
        assert st(0, 0).uses_memory()
        assert not mac(0, 1).uses_memory()
        assert not cla().uses_memory()

    def test_constructors_fill_fields(self):
        instr = addc(2, 0, 1, use_carry=True)
        assert instr.op == Op.ADDC and instr.rd == 2 and instr.use_carry

    def test_validation_missing_fields(self):
        with pytest.raises(AssemblyError):
            Instruction(Op.LD, rd=0).validate(16, 64)  # no address
        with pytest.raises(AssemblyError):
            Instruction(Op.MAC, ra=0).validate(16, 64)  # missing rb

    def test_validation_register_range(self):
        with pytest.raises(AssemblyError):
            mac(0, 99).validate(16, 64)
        mac(0, 15).validate(16, 64)

    def test_validation_address_range(self):
        with pytest.raises(AssemblyError):
            ld(0, 64).validate(16, 64)
        ld(0, 63).validate(16, 64)

    def test_repr_is_readable(self):
        text = repr(subb(1, 2, 3, use_carry=True, comment="borrow chain"))
        assert "SUBB" in text and "borrow chain" in text


class TestDataRam:
    def test_read_write(self):
        ram = DataRam(16, word_bits=16)
        ram.write(3, 0xBEEF)
        assert ram.read(3) == 0xBEEF
        assert ram.reads == 1 and ram.writes == 1

    def test_bounds(self):
        ram = DataRam(4, word_bits=16)
        with pytest.raises(MemoryMapError):
            ram.read(4)
        with pytest.raises(MemoryMapError):
            ram.write(-1, 0)

    def test_word_width_enforced(self):
        ram = DataRam(4, word_bits=16)
        with pytest.raises(MemoryMapError):
            ram.write(0, 1 << 16)

    def test_multiword_staging(self):
        ram = DataRam(16, word_bits=16)
        value = 0x1234_5678_9ABC
        ram.load_integer(2, value, 4)
        assert ram.read_integer(2, 4) == value

    def test_staging_bounds(self):
        ram = DataRam(4, word_bits=16)
        with pytest.raises(MemoryMapError):
            ram.load_integer(2, 1, 4)

    def test_clear(self):
        ram = DataRam(4, word_bits=16)
        ram.write(0, 5)
        ram.clear()
        assert ram.read(0) == 0

    def test_rejects_bad_size(self):
        with pytest.raises(ParameterError):
            DataRam(0)


class TestAllocatorAndRom:
    def test_allocator_layout(self):
        allocator = MemoryAllocator(64)
        a = allocator.allocate("A", 10)
        b = allocator.allocate("B", 5)
        assert a == 0 and b == 10
        assert allocator.address_of("B") == 10
        assert allocator.size_of("A") == 10
        assert set(allocator.names()) == {"A", "B"}

    def test_allocator_duplicate_and_overflow(self):
        allocator = MemoryAllocator(8)
        allocator.allocate("A", 4)
        with pytest.raises(MemoryMapError):
            allocator.allocate("A", 1)
        with pytest.raises(MemoryMapError):
            allocator.allocate("B", 10)

    def test_allocator_unknown_name(self):
        with pytest.raises(MemoryMapError):
            MemoryAllocator(8).address_of("missing")

    def test_instruction_rom_capacity(self):
        rom = InstructionRom(100)
        rom.store(60)
        assert rom.free_words == 40
        with pytest.raises(MemoryMapError):
            rom.store(50)
