"""Tests for the RSA baseline."""

import random

import pytest

from repro.errors import DecryptionError, ParameterError
from repro.rsa.keygen import generate_rsa_keypair
from repro.rsa.rsa import (
    rsa_decrypt,
    rsa_decrypt_int,
    rsa_decrypt_int_crt,
    rsa_encrypt,
    rsa_encrypt_int,
    rsa_sign,
    rsa_verify,
)


@pytest.fixture(scope="module")
def keypair():
    # 512 bits: large enough for the SHA-256-based padding paths, small
    # enough to generate in well under a second.
    return generate_rsa_keypair(512, rng=random.Random(1))


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert keypair.modulus_bits == 512
        assert keypair.n == keypair.p * keypair.q

    def test_exponents_are_inverses(self, keypair):
        phi = (keypair.p - 1) * (keypair.q - 1)
        assert keypair.e * keypair.d % phi == 1

    def test_crt_components(self, keypair):
        assert keypair.d_p == keypair.d % (keypair.p - 1)
        assert keypair.d_q == keypair.d % (keypair.q - 1)
        assert keypair.q_inv * keypair.q % keypair.p == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            generate_rsa_keypair(8)
        with pytest.raises(ParameterError):
            generate_rsa_keypair(256, e=4)

    def test_public_extraction(self, keypair):
        public = keypair.public()
        assert public.n == keypair.n and public.e == keypair.e


class TestRawRsa:
    def test_encrypt_decrypt_int(self, keypair, rng):
        for _ in range(5):
            message = rng.randrange(keypair.n)
            ciphertext = rsa_encrypt_int(keypair, message)
            assert rsa_decrypt_int(keypair, ciphertext) == message

    def test_crt_matches_plain_decryption(self, keypair, rng):
        message = rng.randrange(keypair.n)
        ciphertext = rsa_encrypt_int(keypair, message)
        assert rsa_decrypt_int_crt(keypair, ciphertext) == rsa_decrypt_int(keypair, ciphertext)

    def test_range_checks(self, keypair):
        with pytest.raises(ParameterError):
            rsa_encrypt_int(keypair, keypair.n)
        with pytest.raises(ParameterError):
            rsa_decrypt_int(keypair, keypair.n + 1)

    def test_matches_builtin_pow(self, keypair, rng):
        message = rng.randrange(keypair.n)
        assert rsa_encrypt_int(keypair, message) == pow(message, keypair.e, keypair.n)


class TestPaddedRsa:
    def test_roundtrip(self, keypair):
        message = b"torus beats RSA on bandwidth"
        assert rsa_decrypt(keypair, rsa_encrypt(keypair, message)) == message

    def test_roundtrip_without_crt(self, keypair):
        message = b"no crt"
        assert rsa_decrypt(keypair, rsa_encrypt(keypair, message), use_crt=False) == message

    def test_message_too_long(self, keypair):
        with pytest.raises(ParameterError):
            rsa_encrypt(keypair, b"x" * 128)

    def test_corrupted_ciphertext_detected(self, keypair):
        ciphertext = bytearray(rsa_encrypt(keypair, b"hi"))
        ciphertext[-1] ^= 0xFF
        with pytest.raises(DecryptionError):
            rsa_decrypt(keypair, bytes(ciphertext))


class TestSignatures:
    def test_sign_verify(self, keypair):
        signature = rsa_sign(keypair, b"message")
        assert rsa_verify(keypair, b"message", signature)

    def test_wrong_message_rejected(self, keypair):
        signature = rsa_sign(keypair, b"message")
        assert not rsa_verify(keypair, b"other", signature)

    def test_garbage_signature_rejected(self, keypair):
        assert not rsa_verify(keypair, b"message", b"\x01" * ((keypair.n.bit_length() + 7) // 8))
