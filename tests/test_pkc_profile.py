"""SchemeProfile cycle projection: the registry reproduces Table 3.

The acceptance bar for the unified layer: a single generic loop over
``get_scheme`` names yields the paper's comparison — executed operation
tallies, wire bytes and projected platform cycles — matching both the
library's direct :func:`repro.analysis.tables.table3` reproduction and the
paper's published orderings/factors.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import TABLE3_SCHEMES, table3, table3_profiles
from repro.pkc import build_profile, canonical_exponent, get_scheme
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def profiles(platform):
    """The generic registry loop, protocol legs off (pure Table 3)."""
    return {
        p.scheme: p
        for p in table3_profiles(
            platform, TABLE3_SCHEMES, rng=random.Random(1), include_protocols=False
        )
    }


class TestCanonicalExponent:
    @pytest.mark.parametrize("bits", [1, 2, 3, 160, 161, 170, 1024])
    def test_length_and_weight(self, bits):
        exponent = canonical_exponent(bits)
        assert exponent.bit_length() == bits
        assert bin(exponent).count("1") == (bits + 1) // 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            canonical_exponent(0)

    def test_binary_strategy_hits_the_closed_form(self, bits=170):
        """Executed counts equal the paper's (n-1, (n-1)//2) composition."""
        from repro.exp.strategies import expected_counts

        expected = expected_counts("binary", bits)
        assert expected.squarings == bits - 1
        assert expected.multiplications == (bits - 1) // 2


class TestHeadlineTraces:
    def test_ceilidh_trace_is_the_paper_composition(self, profiles):
        trace = profiles["ceilidh-170"].headline_trace
        assert (trace.squarings, trace.multiplications) == (169, 84)

    def test_rsa_trace_is_the_paper_composition(self, profiles):
        trace = profiles["rsa-1024"].headline_trace
        assert (trace.squarings, trace.multiplications) == (1023, 511)

    def test_ecc_trace_is_the_paper_composition(self, profiles):
        # secp160r1's order is 161 bits: 160 doublings, 80 additions.
        trace = profiles["ecdh-p160"].headline_trace
        assert (trace.doublings, trace.additions) == (160, 80)

    def test_xtr_ladder_trace_scales_with_the_exponent(self, profiles):
        trace = profiles["xtr-170"].headline_trace
        # Per processed bit: two off-by-one products (2 Fp2 mults each) and
        # one or two doubles; 169 processed bits minus the ladder's setup.
        assert trace.multiplications == 4 * 169
        assert 169 <= trace.squarings <= 2 * 169 + 1


class TestCycleProjection:
    def test_matches_direct_table3_exactly(self, profiles, platform):
        """Registry rows equal the Platform composition, not just roughly."""
        direct = {row.system: row for row in table3(platform)}
        pairs = [
            ("ceilidh-170", "170-bit torus (CEILIDH)"),
            ("rsa-1024", "1024-bit RSA"),
            ("ecdh-p160", "160-bit ECC"),
        ]
        for scheme_name, system_name in pairs:
            profile = profiles[scheme_name]
            row = direct[system_name]
            assert profile.projected_ms == pytest.approx(row.measured_ms, rel=1e-12)
            assert profile.area_slices == row.area_slices
            assert profile.frequency_mhz == row.frequency_mhz

    def test_paper_orderings_and_factors(self, profiles):
        torus = profiles["ceilidh-170"]
        rsa = profiles["rsa-1024"]
        ecc = profiles["ecdh-p160"]
        assert ecc.projected_ms < torus.projected_ms < rsa.projected_ms
        assert rsa.projected_ms / torus.projected_ms > 2.5
        assert 1.5 < torus.projected_ms / ecc.projected_ms < 3.5

    def test_paper_tolerance(self, profiles):
        """Each paper row is reproduced within the repo's established 2x band."""
        for name in ("ceilidh-170", "rsa-1024", "ecdh-p160"):
            ratio = profiles[name].ratio_to_paper
            assert ratio is not None
            assert 0.5 < ratio < 2.0

    def test_xtr_projection_lands_between_ecc_and_rsa(self, profiles):
        """No paper number exists; sanity-bound the projection instead."""
        xtr = profiles["xtr-170"]
        assert xtr.paper_ms is None
        assert profiles["ecdh-p160"].projected_ms < xtr.projected_ms
        assert xtr.projected_ms < profiles["rsa-1024"].projected_ms

    def test_wire_bytes_reproduce_the_bandwidth_story(self, profiles):
        torus_bytes = profiles["ceilidh-170"].wire_bytes["public_key"]
        assert profiles["xtr-170"].wire_bytes["public_key"] == torus_bytes
        assert profiles["rsa-1024"].wire_bytes["public_key"] > 2.8 * torus_bytes


class TestFullProfiles:
    def test_protocol_legs_populate_traces_and_wire(self, platform):
        profile = build_profile(
            get_scheme("ceilidh-toy32"), platform, random.Random(2)
        )
        assert set(profile.traces) == {
            "keygen", "key_agreement", "encrypt", "decrypt", "sign", "verify",
        }
        assert all(trace.total > 0 for trace in profile.traces.values())
        assert set(profile.wire_bytes) == {
            "public_key", "key_agreement_message", "ciphertext_overhead", "signature",
        }
        assert profile.total_protocol_ops.total == sum(
            t.total for t in profile.traces.values()
        )

    def test_capability_gaps_leave_no_dangling_entries(self, platform):
        profile = build_profile(get_scheme("xtr-toy32"), platform, random.Random(3))
        assert set(profile.traces) == {"keygen", "key_agreement"}
        assert "ciphertext_overhead" not in profile.wire_bytes
        assert "signature" not in profile.wire_bytes
        assert profile.projected_cycles > 0
