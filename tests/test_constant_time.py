"""The constant-time tag comparison fix (audit rule CT103).

``python -m repro.audit`` flagged the serving layer's confirmation-tag and
digest checks as short-circuiting ``==``/``!=`` on secret-derived bytes —
the canonical remote timing oracle.  These tests pin the fix: the vetted
comparator exists, behaves, and the live key-agreement path still both
accepts correct tags and rejects tampered ones through it.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import ParameterError, ServeError
from repro.pkc import get_scheme
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer
from repro.serve.session import offline_encryption_session, offline_key_agreement_session


def run(coroutine):
    return asyncio.run(coroutine)


class TestConstantTimeEqual:
    def test_equal_and_unequal(self):
        assert protocol.constant_time_equal(b"\x01\x02", b"\x01\x02")
        assert not protocol.constant_time_equal(b"\x01\x02", b"\x01\x03")

    def test_length_mismatch_is_unequal_not_an_error(self):
        assert not protocol.constant_time_equal(b"\x01", b"\x01\x02")
        assert not protocol.constant_time_equal(b"", b"\x00")

    def test_matches_the_tag_path_shapes(self):
        tag = protocol.confirmation_tag(b"shared-secret-bytes")
        assert protocol.constant_time_equal(tag, protocol.confirmation_tag(b"shared-secret-bytes"))
        assert not protocol.constant_time_equal(tag, protocol.confirmation_tag(b"other"))


class TestTagCheckRegression:
    """The comparison sites the analyzer flagged keep working after the fix."""

    def test_offline_sessions_still_accept_honest_runs(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        server = scheme.keygen(rng)
        assert offline_key_agreement_session(scheme, server, rng) > 0
        assert offline_encryption_session(scheme, server, rng, payload=b"hi") > 0

    def test_client_rejects_a_tampered_confirmation_tag(self):
        async def scenario():
            server = ServeServer(
                schemes=("ceilidh-toy32",), rng=random.Random(0xC7), workers=1
            )
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    honest = client.request

                    async def tampered(opcode, payload):
                        frame = await honest(opcode, payload)
                        if frame.opcode == protocol.OP_KA_CONFIRM:
                            flipped = bytes([frame.payload[0] ^ 0x01]) + frame.payload[1:]
                            return protocol.Frame(frame.version, frame.opcode, flipped)
                        return frame

                    client.request = tampered
                    with pytest.raises(ServeError, match="tags disagree"):
                        await client.key_agreement_session(random.Random(1))
                    client.request = honest
                    assert await client.key_agreement_session(random.Random(2)) >= 0

        run(scenario())

    def test_offline_session_raises_on_forced_mismatch(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        server = scheme.keygen(rng)

        class MismatchedScheme:
            name = scheme.name

            def keygen(self, rng=None, trace=None):
                return scheme.keygen(rng, trace=trace)

            def key_agreement(self, pair, public_wire, trace=None):
                shared = scheme.key_agreement(pair, public_wire, trace=trace)
                # Perturb one side only: pair identity decides the flip.
                if pair is server:
                    return bytes([shared[0] ^ 0x01]) + shared[1:]
                return shared

        with pytest.raises(ParameterError, match="mismatch"):
            offline_key_agreement_session(MismatchedScheme(), server, rng)
