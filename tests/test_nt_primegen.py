"""Tests for repro.nt.primegen."""

import random

import pytest

from repro.errors import ParameterError
from repro.nt.primality import is_probable_prime
from repro.nt.primegen import random_prime, random_prime_mod, safe_prime


class TestRandomPrime:
    def test_exact_bit_length(self):
        rng = random.Random(1)
        for bits in (8, 16, 32, 64, 128):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ParameterError):
            random_prime(1)

    def test_deterministic_with_seeded_rng(self):
        assert random_prime(32, random.Random(99)) == random_prime(32, random.Random(99))


class TestRandomPrimeMod:
    def test_congruence_respected(self):
        rng = random.Random(2)
        p = random_prime_mod(48, (2, 5), 9, rng)
        assert p % 9 in (2, 5)
        assert p.bit_length() == 48
        assert is_probable_prime(p)

    def test_single_residue(self):
        rng = random.Random(3)
        p = random_prime_mod(40, (3,), 4, rng)
        assert p % 4 == 3

    def test_empty_residues_rejected(self):
        with pytest.raises(ParameterError):
            random_prime_mod(32, (), 9)


class TestSafePrime:
    def test_small_safe_prime(self):
        rng = random.Random(4)
        p = safe_prime(16, rng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)
        assert p.bit_length() == 16
