"""End-to-end tests of the serving subsystem.

Every protocol a scheme supports is driven through a real loopback server
with the client half executing locally (the same split the load harness
measures); the scheduler's batching, backpressure and executor variants are
exercised directly; and the registry's thread-safety — which the threaded
worker pool depends on — gets a hammering regression test.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.errors import (
    OverloadedError,
    ParameterError,
    ProtocolError,
    UnavailableError,
    UnsupportedOperationError,
)
from repro.pkc.registry import _INSTANCES, get_scheme
from repro.serve.client import ServeClient, run_load
from repro.serve.scheduler import BatchScheduler, SchemeHost, classify_error
from repro.serve.server import ServeServer
from repro.serve.session import serve_request
from repro.serve.protocol import (
    OP_KA_CONFIRM,
    OP_SIGNATURE,
    confirmation_tag,
)


def run(coroutine):
    return asyncio.run(coroutine)


def _server(**overrides) -> ServeServer:
    options = dict(
        schemes=("ceilidh-toy32", "ceilidh-toy64", "xtr-toy32", "rsa-512"),
        rng=random.Random(0x5E581),
        workers=2,
    )
    options.update(overrides)
    return ServeServer(**options)


class TestServeRequest:
    """The shared server-side execution unit, off the wire."""

    def test_key_agreement_matches_direct_derivation(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        server_key = scheme.keygen(rng)
        client_key = scheme.keygen(rng)
        opcode, payload = serve_request(
            scheme, server_key, "key-agreement", client_key.public_wire
        )
        assert opcode == OP_KA_CONFIRM
        shared = scheme.key_agreement(client_key, server_key.public_wire)
        assert payload == confirmation_tag(shared)

    def test_sign_kind_produces_a_verifying_signature(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        server_key = scheme.keygen(rng)
        opcode, signature = serve_request(scheme, server_key, "sign", b"message")
        assert opcode == OP_SIGNATURE
        assert scheme.verify(server_key.public_wire, b"message", signature)

    def test_unknown_kind_rejected(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        server_key = scheme.keygen(rng)
        with pytest.raises(Exception):
            serve_request(scheme, server_key, "handshake", b"")


class TestEndToEndSessions:
    def test_every_capability_of_every_served_scheme(self):
        """KA/encryption/signature round trips for each toy scheme."""

        async def scenario():
            rng = random.Random(0xA11CE)
            completed = []
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    for name, operations in (
                        ("ceilidh-toy32", ("ka", "enc", "sig")),
                        ("xtr-toy32", ("ka",)),
                        ("rsa-512", ("enc", "sig")),
                    ):
                        await client.negotiate(name)
                        if "ka" in operations:
                            latency = await client.key_agreement_session(rng)
                            assert latency > 0
                            completed.append((name, "ka"))
                        if "enc" in operations:
                            await client.encryption_session(b"serve me", rng)
                            completed.append((name, "enc"))
                        if "sig" in operations:
                            await client.signature_session(b"sign me", rng)
                            completed.append((name, "sig"))
                return completed, server.protocol_errors

        completed, protocol_errors = run(scenario())
        assert len(completed) == 6
        assert protocol_errors == 0

    def test_server_side_verify_round_trip(self):
        async def scenario():
            rng = random.Random(0xB0B)
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    frame = await client.request(
                        0x05, b"message to sign"  # OP_SIGN
                    )
                    good = await client.verify_session(b"message to sign", frame.payload)
                    bad = await client.verify_session(b"another message", frame.payload)
                return good, bad

        good, bad = run(scenario())
        assert good is True
        assert bad is False

    def test_server_side_encrypt_round_trip(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    return await client.encrypt_roundtrip_session(b"both halves remote")

        assert run(scenario()) > 0

    def test_unsupported_capability_raises_cleanly(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("xtr-toy32")  # key agreement only
                    with pytest.raises(UnsupportedOperationError):
                        await client.signature_session(b"nope")
                    # The connection survives the rejection.
                    await client.key_agreement_session(random.Random(9))

        run(scenario())

    def test_sessions_deterministic_under_seeded_rng(self):
        """Same client seed, same server key -> byte-identical confirmation."""

        async def tag_for(seed):
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    client_pair = client.scheme.keygen(random.Random(seed))
                    frame = await client.request(0x02, client_pair.public_wire)
                    return frame.payload

        assert run(tag_for(42)) == run(tag_for(42))
        assert run(tag_for(42)) != run(tag_for(43))


class TestScheduler:
    def test_batches_fill_under_concurrent_pressure(self):
        async def scenario():
            async with _server(max_batch=8) as server:
                host, port = server.address
                report = await run_load(
                    host, port,
                    [("ceilidh-toy32", "key-agreement")],
                    clients=8, sessions_per_client=3,
                )
                stats = server.scheduler.stats
                group = stats.group("ceilidh-toy32", "key-agreement")
                return report, stats, group

        report, stats, group = run(scenario())
        assert report.total_errors == 0
        assert report.total_sessions == 24
        assert group.served == 24
        assert group.busy_seconds > 0
        assert group.served_per_second > 0
        # Concurrent clients force at least one multi-request batch, and
        # every multi-request key-agreement batch runs coalesced (one
        # key_agreement_many call, batched inversions).
        assert group.largest_batch > 1
        assert group.coalesced >= 1
        assert stats.batches < stats.served

    def test_bounded_queue_rejects_with_overloaded(self):
        async def scenario():
            host = SchemeHost(schemes=("ceilidh-toy32",), rng=random.Random(5))
            scheduler = BatchScheduler(host, queue_size=1, workers=1)
            await scheduler.start()
            # Park an item in the queue without letting the dispatcher drain
            # it: stuff the queue synchronously before ever yielding.
            parked = asyncio.get_running_loop().create_future()
            try:
                scheduler._queue.put_nowait(
                    type(
                        "Item", (), {
                            "group": ("ceilidh-toy32", "key-agreement"),
                            "payload": b"",
                            "future": parked,
                        },
                    )()
                )
                with pytest.raises(OverloadedError):
                    await scheduler.submit("ceilidh-toy32", "key-agreement", b"")
                return scheduler.stats.rejected
            finally:
                await scheduler.stop()
                if parked.done() and not parked.cancelled():
                    parked.exception()  # retrieved; no un-awaited warning

        assert run(scenario()) == 1

    def test_process_executor_serves_with_the_advertised_key(self):
        """The pickled long-lived key reaches the workers intact."""

        async def scenario():
            async with _server(
                executor="process", workers=2, schemes=("ceilidh-toy32",)
            ) as server:
                host, port = server.address
                report = await run_load(
                    host, port,
                    [("ceilidh-toy32", "key-agreement")],
                    clients=4, sessions_per_client=2,
                )
                return report

        report = run(scenario())
        assert report.total_errors == 0
        assert report.total_sessions == 8

    def test_rejects_bad_configuration(self):
        host = SchemeHost(schemes=("ceilidh-toy32",))
        with pytest.raises(ParameterError):
            BatchScheduler(host, executor="fiber")
        with pytest.raises(ParameterError):
            BatchScheduler(host, max_batch=0)
        with pytest.raises(ParameterError):
            BatchScheduler(host, queue_size=0)

    def test_classify_error_maps_capability_and_internal(self):
        from repro.serve.protocol import ERR_BAD_REQUEST, ERR_INTERNAL, ERR_UNSUPPORTED

        assert classify_error(UnsupportedOperationError("x"))[0] == ERR_UNSUPPORTED
        assert classify_error(ParameterError("x"))[0] == ERR_BAD_REQUEST
        assert classify_error(RuntimeError("x"))[0] == ERR_INTERNAL


class TestGracefulDrain:
    """Shutdown must answer every accepted request — never drop it silently."""

    def test_scheduler_drain_resolves_every_accepted_future(self):
        async def scenario():
            host = SchemeHost(schemes=("ceilidh-toy32",), rng=random.Random(7))
            scheduler = BatchScheduler(host, workers=2, max_batch=8)
            await scheduler.start()
            scheme = host.scheme("ceilidh-toy32")
            host.server_key("ceilidh-toy32")  # what HELLO would have done
            client_pair = scheme.keygen(random.Random(8))
            tasks = [
                asyncio.ensure_future(
                    scheduler.submit(
                        "ceilidh-toy32", "key-agreement", client_pair.public_wire
                    )
                )
                for _ in range(12)
            ]
            await asyncio.sleep(0)  # every submit enqueues before the drain
            stop_task = asyncio.ensure_future(scheduler.stop(drain=True))
            await asyncio.sleep(0)  # the drain flag is up; queue still full
            with pytest.raises(UnavailableError):
                await scheduler.submit(
                    "ceilidh-toy32", "key-agreement", client_pair.public_wire
                )
            results = await asyncio.gather(*tasks)
            await stop_task
            return results, scheduler.stats

        results, stats = run(scenario())
        # Every accepted request resolved with a real result — none were
        # cancelled, none raised, and the counters agree.
        assert len(results) == 12
        assert all(ok for ok, _, _ in results)
        assert stats.submitted == 12
        assert stats.served == 12
        assert stats.errors == 0

    def test_server_drain_flushes_responses_and_never_drops_silently(self):
        async def scenario():
            server = _server(max_batch=4)
            await server.start()
            host, port = server.address
            clients = []
            try:
                for _ in range(6):
                    client = ServeClient(host, port)
                    await client.connect()
                    await client.negotiate("ceilidh-toy32")
                    clients.append(client)
                rng = random.Random(21)
                tasks = [
                    asyncio.ensure_future(client.key_agreement_session(rng))
                    for client in clients
                ]
                await asyncio.sleep(0.002)  # requests are in flight
                await server.stop(drain=True)
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                return outcomes, server.scheduler.stats
            finally:
                for client in clients:
                    await client.close()

        outcomes, stats = run(scenario())
        completed = [o for o in outcomes if isinstance(o, float)]
        refused = [o for o in outcomes if isinstance(o, UnavailableError)]
        # Every session either finished (response flushed before close) or
        # was refused with an *explicit* ERR_UNAVAILABLE frame; a silently
        # closed connection would surface as ProtocolError here.
        assert len(completed) + len(refused) == 6
        assert not any(isinstance(o, ProtocolError) for o in outcomes)
        # The scheduler answered exactly what it accepted.
        assert stats.submitted == stats.served + stats.errors
        assert len(completed) == stats.served

    def test_draining_server_refuses_new_work_with_explicit_frame(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    server._draining = True  # mid-drain, listener still up
                    with pytest.raises(UnavailableError):
                        await client.key_agreement_session(random.Random(3))

        run(scenario())


class TestSchemeHost:
    def test_allowlist_and_key_reuse(self, rng):
        host = SchemeHost(schemes=("ceilidh-toy32",), rng=rng)
        assert host.allowed("ceilidh-toy32")
        assert not host.allowed("rsa-512")
        assert host.scheme_names() == ("ceilidh-toy32",)
        with pytest.raises(ParameterError):
            host.scheme("rsa-512")
        first = host.server_key("ceilidh-toy32")
        assert host.server_key("ceilidh-toy32") is first  # long-lived

    def test_concurrent_key_creation_yields_one_key(self):
        host = SchemeHost(schemes=("ceilidh-toy32",))
        keys, barrier = [], threading.Barrier(6)

        def grab():
            barrier.wait()
            keys.append(host.server_key("ceilidh-toy32"))

        threads = [threading.Thread(target=grab) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(key) for key in keys}) == 1


class TestRegistryThreadSafety:
    def test_concurrent_get_scheme_returns_one_instance(self):
        """The worker pool resolves schemes concurrently; the cache must not fork."""
        _INSTANCES.pop(("ceilidh-toy64", "plain"), None)  # force reconstruction
        results, barrier = [], threading.Barrier(8)

        def resolve():
            barrier.wait()
            results.append(get_scheme("ceilidh-toy64"))

        threads = [threading.Thread(target=resolve) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(scheme) for scheme in results}) == 1


class TestLoadHarness:
    def test_mixed_scheme_load_with_eight_clients(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                report = await run_load(
                    host, port,
                    [
                        ("ceilidh-toy32", "key-agreement"),
                        ("xtr-toy32", "key-agreement"),
                        ("rsa-512", "encryption"),
                    ],
                    clients=8, sessions_per_client=2,
                )
                return report, server.protocol_errors

        report, protocol_errors = run(scenario())
        assert protocol_errors == 0
        assert report.clients == 8
        assert report.total_errors == 0
        assert sorted(report.entries) == [
            "ceilidh-toy32:key-agreement",
            "rsa-512:encryption",
            "xtr-toy32:key-agreement",
        ]
        for entry in report.entries.values():
            assert entry.sessions == 16
            assert entry.histogram.count == 16
            assert entry.sessions_per_second > 0
            digest = entry.histogram.summary()
            assert 0 < digest["p50_ms"] <= digest["max_ms"]

    def test_load_cli_emits_serve_keys(self, tmp_path, monkeypatch):
        from repro.perf import load_bench
        from repro.serve.__main__ import main

        bench_file = tmp_path / "BENCH_serve_test.json"
        monkeypatch.setenv("REPRO_BENCH_PATH", str(bench_file))
        # Pin the plain backend so the emitted keys are the unsuffixed ones
        # even when the suite runs on the REPRO_FIELD_BACKEND=montgomery leg.
        monkeypatch.delenv("REPRO_FIELD_BACKEND", raising=False)
        status = main([
            "load", "--quick",
            "--schemes", "ceilidh-toy32,rsa-512",
            "--clients", "8",
        ])
        assert status == 0
        entries = load_bench(bench_file)
        assert set(entries) == {
            "serve:ceilidh-toy32:key-agreement",
            "serve:rsa-512:encryption",
        }
        record = entries["serve:ceilidh-toy32:key-agreement"]
        assert record.sessions == 16
        assert record.ops_per_second > 0
        assert record.latency_ms["count"] == 16
        assert record.latency_ms["p50_ms"] <= record.latency_ms["max_ms"]
        assert record.meta["clients"] == 8
