"""Tests for the multicore coprocessor execution engine."""

import pytest

from repro.errors import ExecutionError, ParameterError, ScheduleError
from repro.soc.assembler import CoreProgram
from repro.soc.coprocessor import Coprocessor, CoprocessorConfig
from repro.soc.isa import addc, ld, mac, sha, st


@pytest.fixture
def coprocessor():
    return Coprocessor(CoprocessorConfig(word_bits=16, num_cores=2, data_ram_words=64))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ParameterError):
            Coprocessor(CoprocessorConfig(num_cores=0))
        with pytest.raises(ParameterError):
            Coprocessor(CoprocessorConfig(word_bits=2))
        with pytest.raises(ParameterError):
            Coprocessor(CoprocessorConfig(num_registers=4))


class TestOperandStaging:
    def test_write_read_operand(self, coprocessor):
        coprocessor.allocate_operand("A", 4)
        coprocessor.write_operand("A", 0xDEADBEEF)
        assert coprocessor.read_operand("A") == 0xDEADBEEF

    def test_address_lookup(self, coprocessor):
        base = coprocessor.allocate_operand("B", 2)
        assert coprocessor.address_of("B") == base


class TestExecution:
    def test_simple_dataflow(self, coprocessor):
        # Core 0 computes 3 * 4 + 5 via MAC and writes the result back.
        coprocessor.allocate_operand("X", 1)
        coprocessor.allocate_operand("Y", 1)
        coprocessor.allocate_operand("Z", 1)
        coprocessor.allocate_operand("OUT", 1)
        coprocessor.write_operand("X", 3)
        coprocessor.write_operand("Y", 4)
        coprocessor.write_operand("Z", 5)
        program = CoreProgram(
            core_id=0,
            instructions=[
                ld(0, coprocessor.address_of("X")),
                ld(1, coprocessor.address_of("Y")),
                ld(2, coprocessor.address_of("Z")),
                ld(3, coprocessor.address_of("Z")),  # unused, exercises more loads
                mac(0, 1),
                mac(2, 4),  # register 4 is zero, adds nothing
                sha(5),
                addc(6, 5, 2),
                st(coprocessor.address_of("OUT"), 6),
            ],
        )
        result = coprocessor.run_programs([program])
        assert coprocessor.read_operand("OUT") == 17
        assert result.cycles == 9
        assert result.memory_accesses == 5

    def test_two_core_parallel_execution(self, coprocessor):
        coprocessor.allocate_operand("A", 2)
        coprocessor.write_operand("A", (7 << 16) | 3)
        base = coprocessor.address_of("A")
        core0 = CoreProgram(0, [ld(0, base), mac(0, 0), sha(1), st(base, 1)])
        core1 = CoreProgram(1, [ld(0, base + 1), mac(0, 0), sha(1), st(base + 1, 1)])
        coprocessor.run_programs([core0, core1])
        assert coprocessor.read_operand("A") == ((49 << 16) | 9)

    def test_too_many_programs_rejected(self, coprocessor):
        programs = [CoreProgram(i) for i in range(3)]
        with pytest.raises(ScheduleError):
            coprocessor.build_schedule(programs)

    def test_execution_statistics(self, coprocessor):
        program = CoreProgram(0, [mac(0, 0)] * 5)
        result = coprocessor.run_programs([program])
        assert result.mac_operations == 5
        assert result.instructions == 5
        assert len(result.core_utilization) == 2

    def test_schedule_core_count_mismatch(self, coprocessor):
        other = Coprocessor(CoprocessorConfig(num_cores=3))
        schedule = other.build_schedule([CoreProgram(0, [mac(0, 0)])])
        with pytest.raises(ExecutionError):
            coprocessor.execute_schedule(schedule)

    def test_total_cycle_accounting(self, coprocessor):
        program = CoreProgram(0, [mac(0, 0)] * 3)
        before = coprocessor.total_cycles
        coprocessor.run_programs([program])
        assert coprocessor.total_cycles == before + 3
