"""Tests of the stateful secure-channel subsystem.

Three layers: the sans-IO record crypto and server-side table policy
(deterministic fake clocks, no sockets), the live end-to-end behaviour over
a loopback server (every registry scheme, transparent rekeys, hostile
records, quotas, idle timeout), and the cluster story (channels surviving
a worker crash-restart with zero client-visible errors).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import (
    ProtocolError,
    QuotaError,
    RekeyRequiredError,
    ReplayError,
    TamperedRecordError,
    UnavailableError,
    UnknownChannelError,
)
from repro.pkc.registry import available_schemes
from repro.serve.channel import (
    CLIENT_TO_SERVER,
    SERVER_TO_CLIENT,
    ChannelCrypto,
    ChannelPolicy,
    ChannelTable,
    TokenBucket,
    derive_channel_keys,
    open_record,
    seal_record,
)
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    CHANNEL_ID_LEN,
    FrameDecoder,
    OP_CHAN_MSG,
    OP_CHAN_OPEN,
    encode_frame,
    pack_channel,
)
from repro.serve.server import ServeServer


def run(coroutine):
    return asyncio.run(coroutine)


def _server(**overrides) -> ServeServer:
    options = dict(
        schemes=("ceilidh-toy32", "ceilidh-toy64", "xtr-toy32", "rsa-512"),
        rng=random.Random(0x5E55),
        workers=2,
    )
    options.update(overrides)
    return ServeServer(**options)


CHANNEL_ID = bytes(range(CHANNEL_ID_LEN))


class TestRecordCrypto:
    """The sans-IO seal/open construction."""

    def test_round_trip_and_keystream_depends_on_seq(self):
        keys = derive_channel_keys(b"secret", CHANNEL_ID, 0, CLIENT_TO_SERVER)
        first = seal_record(keys, CHANNEL_ID, 0, 0, b"hello channel")
        second = seal_record(keys, CHANNEL_ID, 0, 1, b"hello channel")
        assert open_record(keys, CHANNEL_ID, 0, 0, first) == b"hello channel"
        # Same plaintext, different sequence: different keystream and tag.
        assert first[8:] != second[8:]

    def test_directions_and_epochs_never_share_keys(self):
        c2s = derive_channel_keys(b"secret", CHANNEL_ID, 0, CLIENT_TO_SERVER)
        s2c = derive_channel_keys(b"secret", CHANNEL_ID, 0, SERVER_TO_CLIENT)
        next_epoch = derive_channel_keys(b"secret", CHANNEL_ID, 1, CLIENT_TO_SERVER)
        assert len({c2s.stream_key, s2c.stream_key, next_epoch.stream_key}) == 3
        assert len({c2s.tag_key, s2c.tag_key, next_epoch.tag_key}) == 3

    def test_tampered_body_and_tag_rejected(self):
        keys = derive_channel_keys(b"secret", CHANNEL_ID, 0, CLIENT_TO_SERVER)
        record = bytearray(seal_record(keys, CHANNEL_ID, 0, 0, b"payload"))
        record[10] ^= 0x01  # flip one body bit
        with pytest.raises(TamperedRecordError):
            open_record(keys, CHANNEL_ID, 0, 0, bytes(record))
        record = bytearray(seal_record(keys, CHANNEL_ID, 0, 0, b"payload"))
        record[-1] ^= 0x80  # flip one tag bit
        with pytest.raises(TamperedRecordError):
            open_record(keys, CHANNEL_ID, 0, 0, bytes(record))

    def test_authentic_but_out_of_sequence_is_replay(self):
        keys = derive_channel_keys(b"secret", CHANNEL_ID, 0, CLIENT_TO_SERVER)
        record = seal_record(keys, CHANNEL_ID, 0, 3, b"payload")
        with pytest.raises(ReplayError):
            open_record(keys, CHANNEL_ID, 0, 4, record)

    def test_tag_binds_channel_id_and_epoch(self):
        keys = derive_channel_keys(b"secret", CHANNEL_ID, 0, CLIENT_TO_SERVER)
        record = seal_record(keys, CHANNEL_ID, 0, 0, b"payload")
        other_id = bytes(reversed(CHANNEL_ID))
        with pytest.raises(TamperedRecordError):
            open_record(keys, other_id, 0, 0, record)
        with pytest.raises(TamperedRecordError):
            open_record(keys, CHANNEL_ID, 1, 0, record)

    def test_truncated_record_is_a_protocol_error(self):
        keys = derive_channel_keys(b"secret", CHANNEL_ID, 0, CLIENT_TO_SERVER)
        with pytest.raises(ProtocolError):
            open_record(keys, CHANNEL_ID, 0, 0, b"short")

    def test_channel_crypto_endpoints_interoperate_and_rekey(self):
        client = ChannelCrypto(b"boot", CHANNEL_ID, CLIENT_TO_SERVER, SERVER_TO_CLIENT)
        server = ChannelCrypto(b"boot", CHANNEL_ID, SERVER_TO_CLIENT, CLIENT_TO_SERVER)
        for index in range(5):
            assert server.open(client.seal(b"up %d" % index)) == b"up %d" % index
            assert client.open(server.seal(b"dn %d" % index)) == b"dn %d" % index
        client.rekey(b"fresh")
        server.rekey(b"fresh")
        assert client.epoch == server.epoch == 1
        assert server.open(client.seal(b"after")) == b"after"
        # Old-epoch record no longer opens after the rekey.
        stale = ChannelCrypto(b"boot", CHANNEL_ID, CLIENT_TO_SERVER, SERVER_TO_CLIENT)
        with pytest.raises(TamperedRecordError):
            server.open(stale.seal(b"stale"))

    def test_failed_open_does_not_advance_the_expected_sequence(self):
        client = ChannelCrypto(b"boot", CHANNEL_ID, CLIENT_TO_SERVER, SERVER_TO_CLIENT)
        server = ChannelCrypto(b"boot", CHANNEL_ID, SERVER_TO_CLIENT, CLIENT_TO_SERVER)
        record = client.seal(b"legit")
        with pytest.raises(TamperedRecordError):
            server.open(record[:-1] + bytes([record[-1] ^ 1]))
        assert server.open(record) == b"legit"  # honest retry still lands


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_capacity_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=3, refill_per_second=2, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]
        clock.advance(1.0)  # two tokens back
        assert bucket.try_take() and bucket.try_take() and not bucket.try_take()

    def test_refill_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, refill_per_second=100, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 2.0


class TestChannelTable:
    def _table(self, clock, **policy) -> ChannelTable:
        defaults = dict(
            max_channels_per_client=2,
            max_channels_total=3,
            idle_seconds=10.0,
            bucket_capacity=100.0,
            bucket_refill_per_second=100.0,
            max_messages_per_key=4,
            max_bytes_per_key=1 << 20,
        )
        defaults.update(policy)
        return ChannelTable(ChannelPolicy(**defaults), clock=clock)

    def test_admission_caps_per_client_and_total(self):
        table = self._table(FakeClock())
        table.admit("a", b"A" * 8, "ceilidh-toy32", b"s")
        table.admit("a", b"B" * 8, "ceilidh-toy32", b"s")
        with pytest.raises(QuotaError):
            table.admit("a", b"C" * 8, "ceilidh-toy32", b"s")
        table.admit("b", b"A" * 8, "ceilidh-toy32", b"s")  # other client, own cap
        with pytest.raises(QuotaError):
            table.admit("b", b"B" * 8, "ceilidh-toy32", b"s")  # total cap of 3
        assert table.stats.rejected_quota == 2

    def test_duplicate_open_is_a_protocol_error(self):
        table = self._table(FakeClock())
        table.admit("a", b"A" * 8, "ceilidh-toy32", b"s")
        with pytest.raises(ProtocolError):
            table.admit("a", b"A" * 8, "ceilidh-toy32", b"s")

    def test_idle_eviction_is_lazy_and_explicit(self):
        clock = FakeClock()
        table = self._table(clock)
        table.admit("a", b"A" * 8, "ceilidh-toy32", b"s")
        clock.advance(11.0)
        with pytest.raises(UnknownChannelError):
            table.get("a", b"A" * 8)
        assert table.stats.evicted_idle == 1 and len(table) == 0

    def test_key_budget_demands_rekey_and_rekey_resets_it(self):
        clock = FakeClock()
        table = self._table(clock)
        channel = table.admit("a", b"A" * 8, "ceilidh-toy32", b"s")
        for _ in range(4):
            table.require_key_budget(channel)
            channel.record_message(10, clock())
        with pytest.raises(RekeyRequiredError):
            table.require_key_budget(channel)
        assert table.stats.rekey_required == 1
        channel.rekeyed(b"fresh", clock())
        table.require_key_budget(channel)  # budget is back
        assert channel.crypto.epoch == 1

    def test_drop_client_forgets_channels_and_bucket(self):
        table = self._table(FakeClock())
        table.admit("a", b"A" * 8, "ceilidh-toy32", b"s")
        table.admit("a", b"B" * 8, "ceilidh-toy32", b"s")
        assert table.drop_client("a") == 2
        assert len(table) == 0
        table.admit("a", b"A" * 8, "ceilidh-toy32", b"s")  # cap is clean again

    def test_token_bucket_rejection_counts(self):
        table = self._table(FakeClock(), bucket_capacity=2.0,
                            bucket_refill_per_second=0.0)
        table.take_token("a")
        table.take_token("a")
        with pytest.raises(QuotaError):
            table.take_token("a")
        assert table.stats.rejected_quota == 1


class TestEndToEndChannels:
    def test_channel_on_every_registry_scheme_with_transparent_rekey(self):
        """Acceptance: every registry scheme carries an authenticated
        channel — KA schemes bootstrap via key agreement, RSA via its
        KEM-style encryption — with >= 100 messages and transparent rekeys
        across the run."""

        async def scenario():
            rng = random.Random(0xC4A2)
            totals = {"messages": 0, "rekeys": 0}
            async with ServeServer(rng=random.Random(0xBEE)) as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    for name in available_schemes():
                        await client.negotiate(name)
                        channel = await client.open_channel(
                            rng=rng, rekey_after_messages=5
                        )
                        messages = 100 if name == "ceilidh-toy32" else 6
                        for index in range(messages):
                            await channel.send(b"record %d" % index)
                        assert channel.rekeys >= 1, name
                        totals["messages"] += channel.messages
                        totals["rekeys"] += channel.rekeys
                        await channel.close()
                stats = server.channels.stats
                return totals, stats, server.protocol_errors

        totals, stats, protocol_errors = run(scenario())
        assert totals["messages"] >= 100 + 6 * 9
        assert totals["rekeys"] >= len(available_schemes())
        assert stats.messages == totals["messages"]
        assert stats.rekeys == totals["rekeys"]
        assert stats.evicted_hostile == 0
        assert protocol_errors == 0

    def test_server_demands_rekey_when_client_skips_its_budget(self):
        """A client that never rekeys hits the explicit ERR_REKEY_REQUIRED
        frame, and ChannelSession.send absorbs it by rekeying."""

        async def scenario():
            policy = ChannelPolicy(max_messages_per_key=3)
            async with _server(channel_policy=policy) as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    # Client-side proactive budget far above the server's.
                    channel = await client.open_channel(
                        rng=random.Random(1), rekey_after_messages=10_000
                    )
                    for index in range(8):
                        await channel.send(b"m%d" % index)
                    return channel.rekeys, server.channels.stats.rekey_required

        rekeys, demanded = run(scenario())
        assert demanded >= 1  # the server refused at least once
        assert rekeys >= 1  # ...and the client recovered transparently

    def test_replayed_record_torn_down_and_reply_is_explicit(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    channel = await client.open_channel(rng=random.Random(2))
                    record = channel.crypto.seal(b"original")
                    payload = pack_channel(channel.channel_id, record)
                    await client.request(OP_CHAN_MSG, payload)
                    with pytest.raises(ReplayError):
                        await client.request(OP_CHAN_MSG, payload)  # replay
                    # The channel was evicted as hostile: explicit
                    # ERR_NO_CHANNEL, not a silent close.
                    fresh = channel.crypto.seal(b"after")
                    with pytest.raises(UnknownChannelError):
                        await client.request(
                            OP_CHAN_MSG,
                            pack_channel(channel.channel_id, fresh),
                        )
                    return server.channels.stats

        stats = run(scenario())
        assert stats.evicted_hostile == 1

    def test_tampered_record_torn_down_with_explicit_error(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    channel = await client.open_channel(rng=random.Random(3))
                    record = bytearray(channel.crypto.seal(b"payload"))
                    record[-1] ^= 0x40
                    with pytest.raises(TamperedRecordError):
                        await client.request(
                            OP_CHAN_MSG,
                            pack_channel(channel.channel_id, bytes(record)),
                        )
                    return server.channels.stats

        stats = run(scenario())
        assert stats.evicted_hostile == 1

    def test_quota_exhaustion_answers_err_over_quota(self):
        async def scenario():
            policy = ChannelPolicy(
                bucket_capacity=4.0, bucket_refill_per_second=0.001
            )
            async with _server(channel_policy=policy) as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    channel = await client.open_channel(rng=random.Random(4))
                    sent = 0
                    with pytest.raises(QuotaError):
                        for index in range(20):
                            await channel.send(b"m%d" % index)
                            sent += 1
                    # The refusal was explicit; the channel state is intact
                    # and the connection still open.
                    assert client.connected
                    return sent, server.channels.stats.rejected_quota

        sent, rejected = run(scenario())
        assert sent == 3  # open took one token, then three sends
        assert rejected >= 1

    def test_channel_cap_refuses_new_opens_explicitly(self):
        async def scenario():
            policy = ChannelPolicy(max_channels_per_client=1)
            async with _server(channel_policy=policy) as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    first = await client.open_channel(rng=random.Random(5))
                    with pytest.raises(QuotaError):
                        await client.open_channel(rng=random.Random(6))
                    await first.send(b"still works")
                    return server.channels.stats.rejected_quota

        assert run(scenario()) >= 1

    def test_unknown_channel_is_explicit(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    with pytest.raises(UnknownChannelError):
                        await client.request(
                            OP_CHAN_MSG, pack_channel(b"\x00" * 8, b"x" * 24)
                        )
                    return True

        assert run(scenario())

    def test_malformed_channel_payload_is_bad_request_not_crash(self):
        async def scenario():
            from repro.errors import ServeError

            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    for payload in (b"", b"\x01", b"1234567"):
                        with pytest.raises(ServeError):
                            await client.request(OP_CHAN_OPEN, payload)
                    # Connection survives every malformed payload.
                    await client.key_agreement_session(random.Random(7))
                    return server.protocol_errors

        assert run(scenario()) == 0

    def test_rekey_mid_stream_keeps_both_directions_aligned(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy64")
                    channel = await client.open_channel(rng=random.Random(8))
                    for index in range(3):
                        await channel.send(b"pre %d" % index)
                    await channel.rekey()  # explicit mid-stream rotation
                    for index in range(3):
                        await channel.send(b"post %d" % index)
                    await channel.close()
                    return channel.rekeys, channel.crypto is None

        rekeys, closed = run(scenario())
        assert rekeys == 1 and closed


class TestIdleTimeout:
    def test_idle_connection_gets_explicit_error_frame(self):
        """Satellite: a connection idle past the timeout receives
        ERR_IDLE_TIMEOUT (never a silent close) and its channels die."""

        async def scenario():
            async with _server(idle_timeout=0.15) as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    await client.open_channel(rng=random.Random(9))
                    opened = len(server.channels)
                    await asyncio.sleep(0.5)
                    # The next request reads the idle-timeout error frame.
                    with pytest.raises(UnavailableError):
                        await client.key_agreement_session(random.Random(10))
                    return opened, len(server.channels), server.idle_closes

        opened, remaining, idle_closes = run(scenario())
        assert opened == 1
        assert remaining == 0  # drop_client reclaimed the channel state
        assert idle_closes == 1

    def test_active_connection_is_never_idle_closed(self):
        async def scenario():
            async with _server(idle_timeout=0.3) as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    for _ in range(4):
                        await asyncio.sleep(0.1)  # under the timeout each time
                        await client.key_agreement_session(random.Random(11))
                    return server.idle_closes

        assert run(scenario()) == 0


class TestFrameDecoderChannelFuzz:
    """Satellite: the sans-IO decoder over mangled channel frames."""

    def _valid_frames(self) -> list:
        frames = []
        for opcode in (OP_CHAN_OPEN, OP_CHAN_MSG):
            for blob in (b"", b"x" * 24, b"y" * 512):
                frames.append(encode_frame(opcode, pack_channel(CHANNEL_ID, blob)))
        return frames

    def test_truncations_never_yield_a_frame_or_crash(self):
        for wire in self._valid_frames():
            for cut in range(len(wire)):
                decoder = FrameDecoder()
                assert decoder.feed(wire[:cut]) == []
                # Feeding the remainder completes exactly one frame.
                frames = decoder.feed(wire[cut:])
                assert len(frames) == 1
                assert frames[0].payload[:CHANNEL_ID_LEN] == CHANNEL_ID

    def test_random_split_points_reassemble_identically(self):
        rng = random.Random(0xF22)
        wire = b"".join(self._valid_frames())
        for _ in range(50):
            decoder = FrameDecoder()
            collected = []
            position = 0
            while position < len(wire):
                step = rng.randint(1, 37)
                collected.extend(decoder.feed(wire[position:position + step]))
                position += step
            assert len(collected) == 6
            assert decoder.pending_bytes == 0

    def test_oversized_channel_frame_rejected_and_decoder_goes_dead(self):
        from repro.serve.protocol import HEADER, MAX_FRAME_PAYLOAD, PROTOCOL_VERSION

        # The length field covers version + opcode + payload, so the first
        # oversized advertisement is MAX_FRAME_PAYLOAD + 3.
        oversized = HEADER.pack(MAX_FRAME_PAYLOAD + 3, PROTOCOL_VERSION, OP_CHAN_MSG)
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(oversized)
        with pytest.raises(ProtocolError):
            decoder.feed(b"")  # dead after a framing violation

    def test_mutated_headers_raise_or_wait_but_never_crash(self):
        rng = random.Random(0xFADE)
        base = encode_frame(OP_CHAN_MSG, pack_channel(CHANNEL_ID, b"z" * 32))
        for _ in range(200):
            mutated = bytearray(base)
            for _ in range(rng.randint(1, 4)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            decoder = FrameDecoder()
            try:
                decoder.feed(bytes(mutated))
            except ProtocolError:
                pass  # an explicit rejection is a correct outcome


class TestClusterChannelSurvival:
    def test_channels_survive_worker_crash_restart(self):
        """Acceptance: kill a cluster worker mid-stream; every channel
        session completes with zero client-visible errors (reopens are
        counted, not surfaced)."""
        from repro.serve.cluster import ClusterSupervisor

        async def scenario():
            cluster = ClusterSupervisor(
                workers=2,
                schemes=("ceilidh-toy32",),
                rng=random.Random(0xC1),
            )
            host, port = await cluster.start()
            try:
                async def one_client(index: int) -> tuple:
                    rng = random.Random(1000 + index)
                    client = ServeClient(host, port)
                    await client.connect()
                    try:
                        await client.negotiate("ceilidh-toy32")
                        channel = await client.open_channel(
                            rng=rng, rekey_after_messages=20
                        )
                        for message in range(40):
                            await channel.send(b"m%d" % message)
                            await asyncio.sleep(0.01)
                        return channel.messages, channel.reopens
                    finally:
                        await client.close()

                clients = [asyncio.ensure_future(one_client(i)) for i in range(4)]
                await asyncio.sleep(0.25)
                await cluster.kill_worker(0)
                results = await asyncio.gather(*clients)
                for _ in range(200):
                    if (cluster.total_restarts >= 1
                            and cluster.worker_phases() == ["running", "running"]):
                        break
                    await asyncio.sleep(0.05)
                return results, cluster.total_restarts, cluster.worker_phases()
            finally:
                await cluster.stop()

        results, restarts, phases = run(scenario())
        assert [messages for messages, _ in results] == [40] * 4
        assert restarts >= 1
        assert phases == ["running", "running"]
        # At least one client rode through the crash by reopening.
        assert sum(reopens for _, reopens in results) >= 1
