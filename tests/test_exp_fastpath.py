"""The engine's null-trace fast path and the inline Fp6 multiplication.

The optimisation contract is strict: with ``trace=None`` the strategies
skip all bookkeeping (direct bound group methods), and the inline
deferred-reduction Fp6 multiplication replaces the instrumented 18M path
over plain prime fields — but the *group elements* produced must be
identical in every case, for every strategy, traced or not.
"""

from __future__ import annotations

import random

import pytest

from repro.exp import (
    FieldExpGroup,
    OpTrace,
    available_strategies,
    double_exponentiate,
    exponentiate,
)
from repro.exp.strategies import FixedBaseTable, wnaf_recoding
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.field.opcount import CountingPrimeField


@pytest.fixture(scope="module")
def fp_group():
    return FieldExpGroup(PrimeField(0xFFFFFFFB, check_prime=False))


@pytest.fixture(scope="module")
def torus_group(request):
    from repro.torus.params import get_parameters
    from repro.torus.t6 import T6Group

    return T6Group(get_parameters("toy-32")).exp_group()


class TestTracedUntracedAgreement:
    """Satellite (c): traced and untraced runs return identical elements."""

    @pytest.mark.parametrize("strategy", sorted(available_strategies()))
    def test_every_strategy_on_fp(self, strategy, fp_group):
        rng = random.Random(41)
        for _ in range(5):
            base = rng.randrange(2, fp_group.field.p)
            exponent = rng.getrandbits(64)
            trace = OpTrace()
            traced = exponentiate(fp_group, base, exponent, strategy=strategy, trace=trace)
            untraced = exponentiate(fp_group, base, exponent, strategy=strategy)
            assert traced == untraced == pow(base, exponent, fp_group.field.p)
            if exponent > 1:
                assert trace.total > 0  # the traced run really recorded work

    @pytest.mark.parametrize("strategy", sorted(available_strategies()))
    def test_every_strategy_on_the_torus(self, strategy, torus_group):
        rng = random.Random(42)
        element = torus_group.group.random_subgroup_element(rng)
        exponent = rng.getrandbits(28) | 1
        trace = OpTrace()
        traced = exponentiate(torus_group, element, exponent, strategy=strategy, trace=trace)
        untraced = exponentiate(torus_group, element, exponent, strategy=strategy)
        assert traced == untraced
        assert trace.total > 0

    def test_double_exponentiate(self, fp_group):
        rng = random.Random(43)
        a, b = rng.randrange(2, fp_group.field.p), rng.randrange(2, fp_group.field.p)
        ea, eb = rng.getrandbits(48), rng.getrandbits(48)
        trace = OpTrace()
        traced = double_exponentiate(fp_group, a, ea, b, eb, trace=trace)
        untraced = double_exponentiate(fp_group, a, ea, b, eb)
        p = fp_group.field.p
        assert traced == untraced == pow(a, ea, p) * pow(b, eb, p) % p
        assert trace.total > 0

    def test_fixed_base_table(self, fp_group):
        base = 3
        traced_table = FixedBaseTable(fp_group, base, 48, trace=OpTrace())
        untraced_table = FixedBaseTable(fp_group, base, 48)
        for exponent in (0, 1, 5, -7, (1 << 47) - 1):
            trace = OpTrace()
            assert traced_table.power(exponent, trace=trace) == untraced_table.power(exponent)

    def test_negative_exponent_inversion_counted_once(self, torus_group):
        element = torus_group.group.random_subgroup_element(random.Random(9))
        trace = OpTrace()
        traced = exponentiate(torus_group, element, -5, trace=trace)
        assert trace.inversions >= 1
        assert traced == exponentiate(torus_group, element, -5)


class TestWnafRecoding:
    def test_recoding_retains_no_secrets(self):
        """Security: no process-wide cache keyed by (secret) exponents."""
        assert not hasattr(wnaf_recoding, "cache_info")

    def test_recoding_reconstructs_the_exponent(self):
        for exponent in (1, 2, 0xDEADBEEF, (1 << 170) - 3):
            digits = wnaf_recoding(exponent, 5)
            value = 0
            for digit in digits:  # most-significant first
                value = (value << 1) + digit
            assert value == exponent


class TestInlineFp6Multiplication:
    def test_fast_and_instrumented_paths_agree(self):
        field = PrimeField(1109485483118704838530651968604888341434144398802927, check_prime=False)
        fp6 = make_fp6(field)
        rng = random.Random(17)
        for _ in range(50):
            a = fp6([rng.randrange(field.p) for _ in range(6)])
            b = fp6([rng.randrange(field.p) for _ in range(6)])
            assert fp6.mul(a, b).coeffs == fp6.mul_paper(a, b).coeffs
            assert fp6.sqr(a).coeffs == fp6.mul_paper(a, a).coeffs

    def test_counting_fields_keep_the_instrumented_path(self):
        counting = CountingPrimeField(2494740737, check_prime=False)
        fp6 = make_fp6(counting)
        assert not fp6._plain_base
        a = fp6([1, 2, 3, 4, 5, 6])
        counting.reset_counts()
        fp6.mul(a, a)
        # The paper's figure: exactly 18 base-field multiplications observed.
        assert counting.counts.mul == 18

    def test_plain_fields_take_the_fast_path(self):
        fp6 = make_fp6(PrimeField(2494740737, check_prime=False))
        assert fp6._plain_base
