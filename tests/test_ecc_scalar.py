"""Tests for scalar multiplication strategies."""

import pytest

from repro.errors import ParameterError
from repro.ecc.point import INFINITY
from repro.ecc.scalar import (
    ScalarMultCount,
    scalar_mult,
    scalar_mult_binary,
    scalar_mult_ladder,
    scalar_mult_naf,
    scalar_mult_window,
)


@pytest.fixture(scope="module")
def generator(toy_curve):
    return toy_curve.build()[1]


def _reference_multiply(point, scalar):
    result = INFINITY
    for _ in range(scalar):
        result = result + point
    return result


class TestStrategiesAgree:
    @pytest.mark.parametrize("scalar", [0, 1, 2, 3, 5, 8, 13, 21])
    def test_against_repeated_addition(self, generator, scalar):
        expected = _reference_multiply(generator, scalar)
        assert scalar_mult_binary(generator, scalar) == expected
        assert scalar_mult_naf(generator, scalar) == expected
        assert scalar_mult_window(generator, scalar) == expected
        assert scalar_mult_ladder(generator, scalar) == expected

    def test_large_scalars_agree_with_each_other(self, generator, rng):
        for _ in range(5):
            scalar = rng.randrange(1 << 40)
            reference = scalar_mult_binary(generator, scalar)
            assert scalar_mult_naf(generator, scalar) == reference
            assert scalar_mult_window(generator, scalar, 5) == reference
            assert scalar_mult_ladder(generator, scalar) == reference

    def test_negative_scalar(self, generator):
        assert scalar_mult_binary(generator, -3) == -scalar_mult_binary(generator, 3)
        assert scalar_mult_naf(generator, -3) == -scalar_mult_naf(generator, 3)

    def test_order_annihilates(self, generator, toy_curve):
        for strategy in (scalar_mult_binary, scalar_mult_naf, scalar_mult_ladder):
            assert strategy(generator, toy_curve.order).is_infinity()

    def test_scalar_mult_on_infinity(self):
        assert scalar_mult_binary(INFINITY, 12345).is_infinity()

    def test_dispatch(self, generator):
        reference = scalar_mult_binary(generator, 77)
        for name in ("binary", "naf", "window", "ladder"):
            assert scalar_mult(generator, 77, name) == reference
        with pytest.raises(ParameterError):
            scalar_mult(generator, 77, "bogus")

    def test_window_width_validation(self, generator):
        with pytest.raises(ParameterError):
            scalar_mult_window(generator, 5, window_bits=0)


class TestOperationCounts:
    def test_binary_counts(self, generator):
        count = ScalarMultCount()
        scalar = 0b1100101
        scalar_mult_binary(generator, scalar, count)
        assert count.doublings == scalar.bit_length() - 1
        assert count.additions == bin(scalar).count("1") - 1

    def test_paper_scale_counts(self, generator):
        # Table 3's ECC entry: ~160 doublings and ~80 additions.
        count = ScalarMultCount()
        scalar = (1 << 160) | 0x5A5A5A5A
        scalar_mult_binary(generator, scalar, count)
        assert count.doublings == 160
        assert count.additions <= 80

    def test_naf_reduces_additions(self, generator):
        dense = (1 << 32) - 1
        binary_count, naf_count = ScalarMultCount(), ScalarMultCount()
        scalar_mult_binary(generator, dense, binary_count)
        scalar_mult_naf(generator, dense, naf_count)
        assert naf_count.additions < binary_count.additions

    def test_ladder_is_regular(self, generator):
        count = ScalarMultCount()
        scalar_mult_ladder(generator, 0b10110111, count)
        assert count.doublings == count.additions == 8
