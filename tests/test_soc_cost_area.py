"""Tests for the MicroBlaze interface model, the cost model and the area model."""

import pytest

from repro.errors import ParameterError
from repro.soc.area import AreaModel
from repro.soc.cost import CostModel, ModularOpCosts, PAPER_TABLE1
from repro.soc.level2 import Level2Program, ModOpKind
from repro.soc.microblaze import MicroBlazeInterfaceModel
from repro.soc.sequences import fp6_multiplication_program


class TestMicroBlazeInterface:
    def test_default_round_trip_matches_paper(self):
        assert MicroBlazeInterfaceModel().round_trip_cycles == 184

    def test_type_a_overhead_scales_with_operations(self):
        interface = MicroBlazeInterfaceModel()
        assert interface.type_a_overhead(78) == 78 * 184
        assert interface.type_b_overhead(1) == 184

    def test_scaled_copy(self):
        interface = MicroBlazeInterfaceModel().scaled(0.5)
        assert interface.round_trip_cycles < 184
        assert interface.round_trip_cycles >= 5


class TestCostModel:
    @pytest.fixture
    def paper_costs(self):
        return PAPER_TABLE1[170]

    def test_cost_lookup(self, paper_costs):
        assert paper_costs.cost_of(ModOpKind.MM) == 193
        assert paper_costs.cost_of(ModOpKind.MA) == 47
        assert paper_costs.cost_of(ModOpKind.MS) == 61

    def test_sequence_cost_with_paper_numbers(self, paper_costs):
        # Composing the paper's own Table 1 numbers through the hierarchy
        # reproduces the order of magnitude of its Table 2 row.
        model = CostModel(paper_costs)
        cost = model.sequence_cost(fp6_multiplication_program())
        assert cost.operations == 82
        assert 20_000 < cost.type_a_cycles < 26_000   # paper: 22348
        assert 5_000 < cost.type_b_cycles < 8_000     # paper: 5908
        assert cost.speedup > 2.9  # paper: 3.78 (our sequence has a few more A)

    def test_type_b_always_faster(self, paper_costs):
        model = CostModel(paper_costs)
        program = Level2Program(name="tiny")
        program.mm("c", "a", "b")
        program.ma("c", "c", "a")
        cost = model.sequence_cost(program)
        assert cost.type_b_cycles < cost.type_a_cycles

    def test_exponentiation_and_time_conversion(self, paper_costs):
        model = CostModel(paper_costs, clock_mhz=74.0)
        cycles = model.exponentiation_cycles(6092, squarings=169, multiplications=84)
        assert cycles == 253 * 6092
        assert model.cycles_to_ms(74_000_000) == pytest.approx(1000.0)
        assert model.cycles_to_seconds(74_000_000) == pytest.approx(1.0)

    def test_paper_composition_reproduces_table3_torus(self, paper_costs):
        # 253 group operations at the paper's Type-B cost + round trip = ~20 ms.
        model = CostModel(paper_costs, clock_mhz=74.0)
        per_op = 5908 + 184
        milliseconds = model.cycles_to_ms(model.exponentiation_cycles(per_op, 169, 84))
        assert milliseconds == pytest.approx(20.8, abs=1.0)


class TestAreaModel:
    def test_default_matches_paper(self):
        report = AreaModel().report(4)
        assert report.coprocessor_slices == 3285
        assert report.total_slices == 5419
        assert report.frequency_mhz == pytest.approx(74.0)

    def test_scaling_with_cores(self):
        model = AreaModel()
        small = model.report(2)
        large = model.report(8)
        assert small.total_slices < large.total_slices
        assert small.frequency_mhz > large.frequency_mhz
        assert large.block_rams > small.block_rams

    def test_as_dict(self):
        d = AreaModel().report(4).as_dict()
        assert d["total_slices"] == 5419
        assert d["num_cores"] == 4
