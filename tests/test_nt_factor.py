"""Tests for repro.nt.factor."""

import pytest

from repro.errors import ParameterError
from repro.nt.factor import factorize, largest_prime_factor, pollard_rho, trial_division


class TestTrialDivision:
    def test_smooth_number(self):
        factors, cofactor = trial_division(2 ** 5 * 3 ** 2 * 7)
        assert factors == {2: 5, 3: 2, 7: 1}
        assert cofactor == 1

    def test_large_prime_cofactor_left(self):
        big_prime = (1 << 61) - 1  # Mersenne prime
        factors, cofactor = trial_division(12 * big_prime, bound=1000)
        assert factors == {2: 2, 3: 1}
        assert cofactor == big_prime

    def test_prime_input(self):
        factors, cofactor = trial_division(10007)
        assert factors == {10007: 1}
        assert cofactor == 1

    def test_one(self):
        assert trial_division(1) == ({}, 1)

    def test_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            trial_division(0)


class TestPollardRho:
    def test_finds_factor_of_semiprime(self):
        n = 1000003 * 1000033
        factor = pollard_rho(n)
        assert factor in (1000003, 1000033)

    def test_even_shortcut(self):
        assert pollard_rho(2 * 999983) == 2

    def test_rejects_prime(self):
        with pytest.raises(ParameterError):
            pollard_rho(10007)


class TestFactorize:
    def test_reconstructs_input(self):
        for n in (2, 12, 360, 9699690, 1000003 * 17, 2 ** 10 * 3 ** 5):
            factors = factorize(n)
            product = 1
            for prime, exponent in factors.items():
                product *= prime ** exponent
            assert product == n

    def test_factors_are_prime(self):
        from repro.nt.primality import is_probable_prime

        for prime in factorize(2 ** 4 * 11 * 101 * 10007):
            assert is_probable_prime(prime)

    def test_one_has_no_factors(self):
        assert factorize(1) == {}

    def test_toy_torus_order_factors(self):
        from repro.torus.params import TOY_20

        factors = factorize(TOY_20.torus_order)
        assert TOY_20.q in factors

    def test_largest_prime_factor(self):
        assert largest_prime_factor(2 * 3 * 9973) == 9973
        with pytest.raises(ParameterError):
            largest_prime_factor(1)
