"""The performance subsystem: records, emitter, baseline comparator, CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.perf import (
    LatencyHistogram,
    PerfRecord,
    Timer,
    bench_path,
    compare,
    format_regressions,
    load_bench,
    record_from_batch,
    update_bench,
    write_result,
)
from repro.pkc import get_scheme
from repro.pkc.bench import run_batch


def make_record(scheme="ceilidh-170", operation="key-agreement", ops_per_second=100.0):
    return PerfRecord(
        scheme=scheme,
        operation=operation,
        sessions=16,
        wall_seconds=16 / ops_per_second,
        ops_per_second=ops_per_second,
        ms_per_op=1e3 / ops_per_second,
        squarings=1000,
        multiplications=400,
        inversions=2,
        wire_bytes=1376,
        projected_cycles=123456,
        meta={"quick": False},
    )


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds > 0


class TestLatencyHistogram:
    def test_exact_percentiles_with_interpolation(self):
        hist = LatencyHistogram([0.010, 0.020, 0.030, 0.040, 0.050])
        assert hist.percentile(0.0) == pytest.approx(0.010)
        assert hist.percentile(0.5) == pytest.approx(0.030)
        assert hist.percentile(1.0) == pytest.approx(0.050)
        assert hist.percentile(0.25) == pytest.approx(0.020)
        assert hist.percentile(0.9) == pytest.approx(0.046)

    def test_add_order_does_not_matter(self):
        shuffled = LatencyHistogram()
        for sample in (0.05, 0.01, 0.03, 0.02, 0.04):
            shuffled.add(sample)
        assert shuffled.percentile(0.5) == pytest.approx(0.03)
        # Adding after a percentile query re-sorts correctly.
        shuffled.add(0.001)
        assert shuffled.percentile(0.0) == pytest.approx(0.001)

    def test_empty_histogram_reports_zeroes(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.99) == 0.0
        digest = hist.summary()
        assert digest["count"] == 0
        assert digest["p50_ms"] == 0.0
        assert digest["max_ms"] == 0.0

    def test_summary_shape_in_milliseconds(self):
        hist = LatencyHistogram([0.010, 0.020, 0.030])
        digest = hist.summary()
        assert digest["count"] == 3
        assert digest["p50_ms"] == pytest.approx(20.0)
        assert digest["max_ms"] == pytest.approx(30.0)
        assert digest["mean_ms"] == pytest.approx(20.0)
        assert set(digest) == {
            "p50_ms", "p90_ms", "p99_ms", "p999_ms", "max_ms", "mean_ms", "count",
        }

    def test_merge_and_counters(self):
        left = LatencyHistogram([0.010, 0.030])
        right = LatencyHistogram([0.020])
        left.merge(right)
        assert left.count == 3
        assert len(left) == 3
        assert left.mean_seconds == pytest.approx(0.020)
        assert left.max_seconds == pytest.approx(0.030)
        assert left.percentile(0.5) == pytest.approx(0.020)

    def test_quantile_bounds_enforced(self):
        with pytest.raises(ValueError):
            LatencyHistogram([0.01]).percentile(1.5)

    def test_latency_digest_travels_through_a_record(self, tmp_path):
        digest = LatencyHistogram([0.010, 0.020]).summary()
        record = make_record()
        record.latency_ms = digest
        path = tmp_path / "bench.json"
        update_bench(path, [record])
        loaded = load_bench(path)[record.key]
        assert loaded.latency_ms == digest
        # Offline records stay latency-free.
        assert make_record().latency_ms is None
        assert make_record().as_dict()["latency_ms"] is None


class TestPerfRecord:
    def test_key_is_scheme_colon_operation(self):
        assert make_record().key == "ceilidh-170:key-agreement"

    def test_dict_round_trip(self):
        record = make_record()
        assert PerfRecord.from_dict(record.as_dict()) == record

    def test_from_dict_ignores_unknown_fields(self):
        data = make_record().as_dict()
        data["future_field"] = "whatever"
        assert PerfRecord.from_dict(data) == make_record()

    def test_record_from_batch(self):
        scheme = get_scheme("ceilidh-toy32")
        result = run_batch(scheme, "key-agreement", 3, rng=random.Random(5))
        record = record_from_batch(result, quick=True)
        assert record.scheme == "ceilidh-toy32"
        assert record.operation == "key-agreement"
        assert record.sessions == 3
        assert record.ops_per_second == pytest.approx(result.sessions_per_second)
        assert record.squarings == result.ops.squarings
        assert record.projected_cycles is None  # no platform supplied
        assert record.meta == {"quick": True}

    def test_record_from_batch_projects_cycles(self):
        from repro.soc.system import Platform

        scheme = get_scheme("ceilidh-toy32")
        platform = Platform()
        result = run_batch(scheme, "key-agreement", 2, rng=random.Random(6))
        record = record_from_batch(result, scheme=scheme, platform=platform)
        cost_sq, cost_mul = scheme.platform_cycles_per_operation(platform)
        expected = result.ops.squarings * cost_sq + result.ops.multiplications * cost_mul
        assert record.projected_cycles == expected > 0


class TestEmitter:
    def test_missing_file_is_empty_trajectory(self, tmp_path):
        assert load_bench(tmp_path / "BENCH_pkc.json") == {}

    def test_update_creates_and_reloads(self, tmp_path):
        path = tmp_path / "BENCH_pkc.json"
        update_bench(path, [make_record()])
        entries = load_bench(path)
        assert list(entries) == ["ceilidh-170:key-agreement"]
        assert entries["ceilidh-170:key-agreement"] == make_record()

    def test_update_merges_without_erasing_other_cells(self, tmp_path):
        path = tmp_path / "BENCH_pkc.json"
        update_bench(path, [make_record(), make_record(scheme="rsa-1024", operation="encryption")])
        update_bench(path, [make_record(ops_per_second=250.0)])
        entries = load_bench(path)
        assert entries["ceilidh-170:key-agreement"].ops_per_second == 250.0
        assert "rsa-1024:encryption" in entries  # untouched cell survived

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "BENCH_pkc.json"
        path.write_text("not json {")
        with pytest.raises(json.JSONDecodeError):
            load_bench(path)

    def test_bench_path_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PATH", str(tmp_path / "elsewhere.json"))
        assert bench_path(tmp_path) == tmp_path / "elsewhere.json"
        monkeypatch.delenv("REPRO_BENCH_PATH")
        assert bench_path(tmp_path) == tmp_path / "BENCH_pkc.json"

    def test_write_result_emits_both_renderings(self, tmp_path):
        text = write_result(
            tmp_path, "demo", ["scheme", "ops/s"], [("ceilidh-170", 100.5)], title="Demo"
        )
        assert "ceilidh-170" in text
        assert (tmp_path / "demo.txt").read_text().startswith("Demo")
        document = json.loads((tmp_path / "demo.json").read_text())
        assert document["rows"] == [{"scheme": "ceilidh-170", "ops/s": 100.5}]


class TestBaselineCompare:
    def test_no_regression_within_tolerance(self):
        current = {"a:x": make_record("a", "x", 85.0)}
        baseline = {"a:x": make_record("a", "x", 100.0)}
        assert compare(current, baseline, tolerance=0.2) == []

    def test_regression_beyond_tolerance_detected(self):
        current = {"a:x": make_record("a", "x", 70.0)}
        baseline = {"a:x": make_record("a", "x", 100.0)}
        regressions = compare(current, baseline, tolerance=0.2)
        assert [r.key for r in regressions] == ["a:x"]
        assert regressions[0].ratio == pytest.approx(0.7)
        assert "a:x" in format_regressions(regressions)

    def test_unshared_cells_skipped(self):
        current = {"new:x": make_record("new", "x", 1.0)}
        baseline = {"old:x": make_record("old", "x", 100.0)}
        assert compare(current, baseline) == []

    def test_keys_argument_restricts_the_gate(self):
        current = {
            "a:x": make_record("a", "x", 10.0),
            "b:x": make_record("b", "x", 10.0),
        }
        baseline = {
            "a:x": make_record("a", "x", 100.0),
            "b:x": make_record("b", "x", 100.0),
        }
        regressions = compare(current, baseline, keys=["a:x"])
        assert [r.key for r in regressions] == ["a:x"]

    def test_calibration_cancels_uniform_machine_speed(self):
        # Every cell is uniformly 3x slower (a slower host, not a regression)...
        current = {
            key: make_record(*key.split(":"), ops_per_second=rate / 3)
            for key, rate in (("a:x", 90.0), ("b:x", 120.0), ("c:x", 150.0))
        }
        baseline = {
            key: make_record(*key.split(":"), ops_per_second=rate)
            for key, rate in (("a:x", 90.0), ("b:x", 120.0), ("c:x", 150.0))
        }
        assert compare(current, baseline, calibrate=True) == []
        # ...but one cell regressing on top of that still sticks out.
        current["b:x"] = make_record("b", "x", 120.0 / 3 * 0.5)
        regressions = compare(current, baseline, calibrate=True)
        assert [r.key for r in regressions] == ["b:x"]

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare({}, {}, tolerance=1.5)


class TestCli:
    def test_show_and_compare(self, tmp_path, capsys):
        from repro.perf.__main__ import main

        path = tmp_path / "BENCH_pkc.json"
        update_bench(path, [make_record()])
        assert main(["show", str(path)]) == 0
        assert "ceilidh-170" in capsys.readouterr().out

        slower = tmp_path / "slower.json"
        update_bench(slower, [make_record(ops_per_second=10.0)])
        assert main(["compare", str(path), str(slower)]) == 0  # faster than baseline
        assert main(["compare", str(slower), str(path)]) == 1  # 10x slower: regression

    def test_compare_clean_exit(self, tmp_path, capsys):
        from repro.perf.__main__ import main

        path = tmp_path / "BENCH_pkc.json"
        update_bench(path, [make_record()])
        assert main(["compare", str(path), str(path)]) == 0
        assert "no throughput regressions" in capsys.readouterr().out
