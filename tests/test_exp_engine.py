"""Tests for the unified exponentiation engine (repro.exp).

Covers the strategy registry, cross-strategy/cross-group agreement against a
naive square-and-multiply reference, the unified OpTrace (and its
backwards-compatible per-layer subclasses), fixed-base tables, Shamir double
exponentiation, and the headline cost claims: wNAF uses >= 20% fewer general
multiplications than binary at 160-bit exponents on both T6 and ECC, and one
Shamir double exponentiation beats two independent exponentiations.
"""

import random

import pytest

from repro.errors import ParameterError
from repro.exp import (
    FieldExpGroup,
    FixedBaseTable,
    JacobianExpGroup,
    MontgomeryExpGroup,
    OpTrace,
    PolyModExpGroup,
    TorusExpGroup,
    available_strategies,
    double_exponentiate,
    expected_counts,
    exponentiate,
    get_strategy,
    select_strategy,
)
from repro.exp.trace import ExponentiationCount, ExponentiationTrace, ScalarMultCount
from repro.field import poly as P
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.field.opcount import CountingPrimeField, OperationCounts
from repro.field.towers import TowerFp6
from repro.montgomery.domain import MontgomeryDomain


# ---------------------------------------------------------------------------
# Reference: naive square-and-multiply written directly against the group.
# ---------------------------------------------------------------------------


def naive_power(group, base, exponent):
    if exponent < 0:
        return naive_power(group, group.inverse(base), -exponent)
    result = group.identity()
    acc = base
    while exponent:
        if exponent & 1:
            result = group.op(result, acc)
        acc = group.square(acc)
        exponent >>= 1
    return result


def make_groups(toy32_group, toy_curve, rng):
    """(group, random-element, equality) triples spanning every layer."""
    fp = PrimeField(10007)
    fp6 = make_fp6(PrimeField(toy32_group.params.p, check_prime=False))
    tower = TowerFp6(PrimeField(toy32_group.params.p, check_prime=False))
    domain = MontgomeryDomain(10007, word_bits=8)
    curve, generator = toy_curve.build()
    poly_field = PrimeField(10007)
    poly_modulus = [2, 0, 1]  # t^2 + 2, irreducible mod 10007 (-2 is a non-residue)

    def poly_sample():
        while True:
            candidate = [rng.randrange(10007), rng.randrange(10007)]
            if P.trim(candidate):
                return candidate

    jacobian = JacobianExpGroup(curve)
    return [
        (FieldExpGroup(fp), lambda: rng.randrange(1, 10007), lambda a, b: a == b),
        (
            ExtensionGroupForTest(fp6),
            lambda: fp6.random_nonzero(rng),
            lambda a, b: a == b,
        ),
        (
            TowerGroupForTest(tower),
            lambda: tower.element(tower.fp3.random_nonzero(rng), tower.fp3.random_element(rng)),
            lambda a, b: a == b,
        ),
        (
            PolyModExpGroup(poly_field, poly_modulus),
            poly_sample,
            lambda a, b: P.trim(a) == P.trim(b),
        ),
        (
            TorusExpGroup(toy32_group),
            lambda: toy32_group.random_element(rng),
            lambda a, b: a == b,
        ),
        (
            MontgomeryExpGroup(domain),
            lambda: domain.to_montgomery(rng.randrange(1, 10007)),
            lambda a, b: a == b,
        ),
        (
            jacobian,
            lambda: generator.to_jacobian(),
            lambda a, b: a == b,
        ),
    ]


def ExtensionGroupForTest(fp6):
    from repro.exp.group import ExtensionExpGroup

    return ExtensionExpGroup(fp6)


def TowerGroupForTest(tower):
    from repro.exp.group import TowerExpGroup

    return TowerExpGroup(tower)


# ---------------------------------------------------------------------------
# Cross-strategy x cross-group agreement.
# ---------------------------------------------------------------------------


class TestCrossStrategyAgreement:
    def test_every_strategy_on_every_group(self, toy32_group, toy_curve, rng):
        """Property test: all strategies match naive square-and-multiply on
        random inputs in Fp, Fp6, the tower, a polynomial ring, T6(Fp), the
        Montgomery domain and E(Fp)."""
        strategies = available_strategies()
        assert set(strategies) >= {
            "binary",
            "naf",
            "wnaf",
            "sliding",
            "window",
            "ladder",
            "fixed_base",
        }
        for group, sample, equal in make_groups(toy32_group, toy_curve, rng):
            for _ in range(3):
                base = sample()
                exponent = rng.randrange(1, 1 << rng.randrange(4, 48))
                reference = naive_power(group, base, exponent)
                for strategy in strategies:
                    result = exponentiate(group, base, exponent, strategy=strategy)
                    assert equal(result, reference), (group.name, strategy, exponent)

    def test_edge_exponents(self, toy32_group, toy_curve, rng):
        for group, sample, equal in make_groups(toy32_group, toy_curve, rng):
            base = sample()
            for strategy in available_strategies():
                assert group.is_identity(
                    exponentiate(group, base, 0, strategy=strategy)
                ), (group.name, strategy)
                assert equal(exponentiate(group, base, 1, strategy=strategy), base)

    def test_negative_exponents_where_invertible(self, toy32_group, rng):
        group = TorusExpGroup(toy32_group)
        base = toy32_group.random_element(rng)
        inverse_ref = naive_power(group, base, toy32_group.order - 5)
        for strategy in ("binary", "naf", "wnaf", "sliding"):
            assert exponentiate(group, base, -5, strategy=strategy) == inverse_ref

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            get_strategy("bogus")

    def test_bad_window_rejected(self, rng):
        group = FieldExpGroup(PrimeField(10007))
        for strategy in ("wnaf", "sliding", "window"):
            with pytest.raises(ParameterError):
                exponentiate(group, 3, 99, strategy=strategy, window_bits=0)

    def test_auto_selection(self, toy32_group):
        field_group = FieldExpGroup(PrimeField(10007))
        torus_group = TorusExpGroup(toy32_group)
        assert select_strategy(field_group, 7) == "binary"
        assert select_strategy(field_group, 1 << 100) == "sliding"
        assert select_strategy(torus_group, 1 << 100) == "wnaf"


# ---------------------------------------------------------------------------
# The unified trace and its per-layer aliases.
# ---------------------------------------------------------------------------


class TestOpTrace:
    def test_additive_aliases_share_counters(self):
        trace = OpTrace()
        trace.doublings += 3
        trace.additions += 2
        assert trace.squarings == 3
        assert trace.multiplications == 2
        assert trace.total == 5

    def test_legacy_subclasses(self):
        count = ExponentiationCount(5, 2)
        assert count.squarings == 5 and count.multiplications == 2
        trace = ExponentiationTrace(squarings=4, multiplications=1)
        assert trace.total == 5
        scalar = ScalarMultCount(doublings=7, additions=3)
        assert scalar.squarings == 7 and scalar.additions == 3
        assert isinstance(count, OpTrace)
        assert isinstance(trace, OpTrace)
        assert isinstance(scalar, OpTrace)

    def test_arithmetic_and_merge(self):
        a = OpTrace(3, 2, 1)
        b = OpTrace(1, 1, 0)
        assert (a + b).as_dict() == {"squarings": 4, "multiplications": 3, "inversions": 1}
        assert (a - b).squarings == 2
        a.merge(b)
        assert a.squarings == 4
        a.reset()
        assert a.total == 0

    def test_to_operation_counts_default(self):
        trace = OpTrace(squarings=10, multiplications=4)
        counts = trace.to_operation_counts()
        assert isinstance(counts, OperationCounts)
        assert counts.mul == 14

    def test_to_operation_counts_with_costs(self):
        # One Fp6 multiplication is 18M + ~60A (the paper's Table 2 unit).
        fp6_mul = OperationCounts(mul=18, add=30, sub=30)
        trace = OpTrace(squarings=2, multiplications=1)
        counts = trace.to_operation_counts(mul_cost=fp6_mul)
        assert counts.mul == 3 * 18
        assert counts.additions_total == 3 * 60

    def test_counting_field_pow_binary_charge(self):
        field = CountingPrimeField(10007)
        field.reset_counts()
        field.pow(3, 0b101101)
        assert field.counts.mul == (6 - 1) + (4 - 1)

    def test_operation_counts_sub_keeps_extra(self):
        a = OperationCounts(mul=5, extra={"frobenius": 3})
        b = OperationCounts(mul=2, extra={"frobenius": 1})
        delta = a - b
        assert delta.mul == 3
        assert delta.extra == {"frobenius": 2}
        total = a + b
        assert total.extra == {"frobenius": 4}
        assert a.scaled(2).extra == {"frobenius": 6}


# ---------------------------------------------------------------------------
# Cost claims: the reason the engine exists.
# ---------------------------------------------------------------------------


class TestCostClaims:
    def test_wnaf_beats_binary_on_torus_160bit(self, toy32_group):
        rng = random.Random(160)
        element = toy32_group.random_element(rng)
        exponent = rng.randrange(1 << 159, 1 << 160)
        binary, wnaf = OpTrace(), OpTrace()
        reference = toy32_group.exponentiate(element, exponent, "binary", count=binary)
        fast = toy32_group.exponentiate(element, exponent, "wnaf", count=wnaf)
        assert fast == reference
        # >= 20% fewer general Fp6 multiplications (squarings stay ~equal).
        assert wnaf.multiplications <= 0.8 * binary.multiplications
        assert wnaf.total < binary.total

    def test_wnaf_beats_binary_on_ecc_160bit(self, toy_curve):
        from repro.ecc.scalar import scalar_mult_binary, scalar_mult_wnaf

        rng = random.Random(161)
        _, generator = toy_curve.build()
        scalar = rng.randrange(1 << 159, 1 << 160)
        binary, wnaf = ScalarMultCount(), ScalarMultCount()
        reference = scalar_mult_binary(generator, scalar, binary)
        fast = scalar_mult_wnaf(generator, scalar, count=wnaf)
        assert fast == reference
        assert wnaf.additions <= 0.8 * binary.additions
        assert wnaf.total < binary.total

    def test_sliding_beats_binary_at_rsa_sizes(self):
        domain = MontgomeryDomain(10007, word_bits=8)
        rng = random.Random(1024)
        exponent = rng.randrange(1 << 1023, 1 << 1024)
        from repro.montgomery.exponent import montgomery_power

        binary, sliding = ExponentiationTrace(), ExponentiationTrace()
        ref = montgomery_power(domain, 1234, exponent, strategy="binary", trace=binary)
        fast = montgomery_power(domain, 1234, exponent, strategy="sliding", trace=sliding)
        assert ref == fast == pow(1234, exponent, 10007)
        assert sliding.multiplications <= 0.8 * binary.multiplications

    def test_shamir_beats_two_exponentiations(self, toy32_group):
        rng = random.Random(77)
        a = toy32_group.random_element(rng)
        b = toy32_group.random_element(rng)
        ea = rng.randrange(1 << 159, 1 << 160)
        eb = rng.randrange(1 << 159, 1 << 160)
        group = toy32_group.exp_group()
        shamir, separate = OpTrace(), OpTrace()
        combined = double_exponentiate(group, a, ea, b, eb, trace=shamir)
        left = exponentiate(group, a, ea, strategy="binary", trace=separate)
        right = exponentiate(group, b, eb, strategy="binary", trace=separate)
        assert combined == left * right
        assert shamir.total < separate.total

    def test_fixed_base_table_has_no_online_squarings(self, toy32_group):
        rng = random.Random(99)
        group = toy32_group.exp_group()
        generator = toy32_group.generator()
        q_bits = toy32_group.params.q.bit_length()
        table = FixedBaseTable(group, generator, q_bits)
        online = OpTrace()
        exponent = rng.randrange(1, toy32_group.params.q)
        result = table.power(exponent, trace=online)
        assert result == toy32_group.exponentiate(generator, exponent, "binary")
        assert online.squarings == 0
        assert online.multiplications < exponent.bit_length()

    def test_generator_power_matches_exponentiate(self, toy32_group, rng):
        exponent = rng.randrange(1, toy32_group.params.q)
        assert toy32_group.generator_power(exponent) == toy32_group.exponentiate(
            toy32_group.generator(), exponent
        )

    def test_expected_counts_model(self):
        binary = expected_counts("binary", 170)
        wnaf = expected_counts("wnaf", 170, window_bits=4)
        assert binary.squarings == 169 and binary.multiplications == 84
        assert wnaf.multiplications < 0.8 * binary.multiplications
        shamir = expected_counts("shamir", 170)
        assert shamir.total < 2 * binary.total
        with pytest.raises(ParameterError):
            expected_counts("bogus", 170)


# ---------------------------------------------------------------------------
# Protocol integration: the new scenarios the engine unlocks.
# ---------------------------------------------------------------------------


class TestProtocolIntegration:
    def test_ecdsa_verify_uses_double_scalar_mult(self, rng):
        from repro.ecc.curves import get_curve
        from repro.ecc.ecdh import ecdh_generate, ecdsa_sign, ecdsa_verify
        from repro.ecc.scalar import double_scalar_mult, scalar_mult

        named = get_curve("secp160r1")
        keypair = ecdh_generate(named, rng)
        signature = ecdsa_sign(keypair, b"engine", rng)
        assert ecdsa_verify(named, keypair.public, b"engine", signature)
        assert not ecdsa_verify(named, keypair.public, b"tampered", signature)

        # Degenerate scalars fall back to single multiplications.
        _, generator = named.build()
        assert double_scalar_mult(generator, 0, keypair.public, 5) == scalar_mult(
            keypair.public, 5
        )
        assert double_scalar_mult(generator, 5, keypair.public, 0) == scalar_mult(
            generator, 5
        )

    def test_ceilidh_roundtrip_still_works(self, toy32_params, rng):
        from repro.torus.ceilidh import CeilidhSystem

        system = CeilidhSystem(toy32_params)
        keypair = system.generate_keypair(rng)
        signature = system.sign(keypair, b"fixed-base", rng)
        assert system.verify(keypair.public, b"fixed-base", signature)
        ciphertext = system.encrypt(keypair.public, b"hello torus", rng)
        assert system.decrypt(keypair, ciphertext) == b"hello torus"

    def test_torus_shamir_helper(self, toy32_group, rng):
        a = toy32_group.random_element(rng)
        b = toy32_group.random_element(rng)
        ea, eb = rng.randrange(1 << 40), rng.randrange(1 << 40)
        combined = toy32_group.double_exponentiate(a, ea, b, eb)
        assert combined == toy32_group.exponentiate(a, ea) * toy32_group.exponentiate(b, eb)
