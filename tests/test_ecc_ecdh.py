"""Tests for ECDH and ECDSA on the ECC substrate."""

import random

import pytest

from repro.ecc.curves import generate_toy_curve
from repro.ecc.ecdh import (
    ecdh_generate,
    ecdh_shared_secret,
    ecdsa_sign,
    ecdsa_verify,
)


@pytest.fixture(scope="module")
def toy_named():
    return generate_toy_curve(2003, random.Random(13), require_prime_order=True)


class TestEcdh:
    def test_shared_secret_agreement(self, toy_named):
        alice = ecdh_generate(toy_named, random.Random(1))
        bob = ecdh_generate(toy_named, random.Random(2))
        assert ecdh_shared_secret(alice, bob.public) == ecdh_shared_secret(bob, alice.public)

    def test_private_key_in_range(self, toy_named):
        keypair = ecdh_generate(toy_named, random.Random(3))
        assert 1 <= keypair.private < toy_named.order

    def test_public_bytes_format(self, toy_named):
        keypair = ecdh_generate(toy_named, random.Random(4))
        data = keypair.public_bytes()
        width = (toy_named.p.bit_length() + 7) // 8
        assert data[0] == 4 and len(data) == 1 + 2 * width

    def test_third_party_disagrees(self, toy_named):
        alice = ecdh_generate(toy_named, random.Random(5))
        bob = ecdh_generate(toy_named, random.Random(6))
        eve = ecdh_generate(toy_named, random.Random(7))
        assert ecdh_shared_secret(eve, bob.public) != ecdh_shared_secret(alice, bob.public)


class TestEcdsa:
    def test_sign_verify(self, toy_named):
        keypair = ecdh_generate(toy_named, random.Random(8))
        signature = ecdsa_sign(keypair, b"hello", random.Random(9))
        assert ecdsa_verify(toy_named, keypair.public, b"hello", signature)

    def test_wrong_message_rejected(self, toy_named):
        keypair = ecdh_generate(toy_named, random.Random(10))
        signature = ecdsa_sign(keypair, b"hello", random.Random(11))
        assert not ecdsa_verify(toy_named, keypair.public, b"goodbye", signature)

    def test_wrong_key_rejected(self, toy_named):
        keypair = ecdh_generate(toy_named, random.Random(12))
        other = ecdh_generate(toy_named, random.Random(13))
        signature = ecdsa_sign(keypair, b"hello", random.Random(14))
        assert not ecdsa_verify(toy_named, other.public, b"hello", signature)

    def test_out_of_range_signature_rejected(self, toy_named):
        keypair = ecdh_generate(toy_named, random.Random(15))
        assert not ecdsa_verify(toy_named, keypair.public, b"x", (0, 1))
        assert not ecdsa_verify(toy_named, keypair.public, b"x", (1, toy_named.order))

    def test_secp160r1_sign_verify(self):
        from repro.ecc.curves import SECP160R1

        keypair = ecdh_generate(SECP160R1, random.Random(16))
        signature = ecdsa_sign(keypair, b"paper-sized curve", random.Random(17))
        assert ecdsa_verify(SECP160R1, keypair.public, b"paper-sized curve", signature)
