"""Tests for the rho/psi compression maps (the heart of CEILIDH)."""

import pytest

from repro.errors import CompressionError, NotInTorusError
from repro.torus.compression import CompressedElement, TorusCompressor


class TestRoundTrips:
    def test_compress_then_decompress(self, toy32_group, rng):
        compressor = toy32_group.compressor
        for _ in range(20):
            element = toy32_group.random_element(rng)
            try:
                compressed = compressor.compress(element.value)
            except CompressionError:
                continue  # exceptional set has density ~1/p
            assert compressor.decompress(compressed) == element.value

    def test_decompress_then_compress(self, toy32_group, rng):
        compressor = toy32_group.compressor
        p = toy32_group.params.p
        hits = 0
        for _ in range(20):
            pair = CompressedElement(rng.randrange(p), rng.randrange(p))
            try:
                element = compressor.decompress(pair)
            except CompressionError:
                continue
            hits += 1
            assert compressor.compress(element) == pair
        assert hits > 10

    def test_decompressed_values_are_torus_members(self, toy32_group, rng):
        compressor = toy32_group.compressor
        p = toy32_group.params.p
        for _ in range(10):
            pair = CompressedElement(rng.randrange(p), rng.randrange(p))
            try:
                element = compressor.decompress(pair)
            except CompressionError:
                continue
            assert toy32_group.contains_raw(element)

    def test_subgroup_elements_compress(self, toy32_group, rng):
        compressor = toy32_group.compressor
        g = toy32_group.generator()
        element = g ** rng.randrange(2, toy32_group.params.q)
        compressed = compressor.compress(element.value)
        assert compressor.decompress(compressed) == element.value

    def test_170_bit_roundtrip(self, ceilidh170_group, rng):
        compressor = ceilidh170_group.compressor
        element = ceilidh170_group.generator() ** rng.randrange(1 << 100)
        compressed = compressor.compress(element.value)
        assert compressor.decompress(compressed) == element.value


class TestExceptionalCases:
    def test_identity_not_compressible(self, toy32_group):
        with pytest.raises(CompressionError):
            toy32_group.compressor.compress(toy32_group.fp6.one())

    def test_cube_root_of_unity_not_compressible(self, toy32_group):
        # alpha = x = z^3 corresponds to the parametrisation base point c = 1.
        z_cubed = toy32_group.fp6.pow(toy32_group.fp6.generator(), 3)
        assert toy32_group.contains_raw(z_cubed)
        with pytest.raises(CompressionError):
            toy32_group.compressor.compress(z_cubed)

    def test_non_torus_element_rejected(self, toy32_group, rng):
        raw = toy32_group.fp6.random_nonzero(rng)
        with pytest.raises((NotInTorusError, CompressionError)):
            toy32_group.compressor.compress(raw)

    def test_exceptional_conic_detected(self, toy32_group):
        # (u, v) with u^2 + 4u + 3 + v - v^2 = 0: take v = 0, u = -1.
        compressor = toy32_group.compressor
        p = toy32_group.params.p
        with pytest.raises(CompressionError):
            compressor.decompress(CompressedElement((p - 1), 0))

    def test_exceptional_point_u_minus_two(self, toy32_group):
        compressor = toy32_group.compressor
        p = toy32_group.params.p
        with pytest.raises(CompressionError):
            compressor.decompress(CompressedElement(p - 2, 5))


class TestCompressionBandwidth:
    def test_pair_is_two_field_elements(self, toy32_group, rng):
        compressed = toy32_group.compressor.compress(
            toy32_group.random_subgroup_element(rng).value
        )
        p = toy32_group.params.p
        assert 0 <= compressed.u < p and 0 <= compressed.v < p
        assert compressed.as_tuple() == (compressed.u, compressed.v)

    def test_distinct_elements_compress_differently(self, toy32_group, rng):
        g = toy32_group.generator()
        seen = set()
        for exponent in range(2, 22):
            compressed = toy32_group.compressor.compress((g ** exponent).value)
            seen.add(compressed.as_tuple())
        assert len(seen) == 20

    def test_compressor_reachable_from_element(self, toy32_group, rng):
        element = toy32_group.random_subgroup_element(rng)
        compressed = element.compress()
        assert toy32_group.compressor.decompress_to_element(compressed) == element
