"""Tests for the XTR extension (trace representation, ladder, key agreement).

The trace recurrences are validated against *direct* computation of
Tr(g^n) through full Fp6 arithmetic, which makes these tests an independent
check of both the ladder and the tower/trace machinery.
"""

import random

import pytest

from repro.errors import ParameterError
from repro.torus.params import get_parameters
from repro.torus.t6 import T6Group
from repro.xtr.keyagreement import XtrSystem
from repro.xtr.trace import XtrContext


@pytest.fixture(scope="module")
def context32():
    return XtrContext(get_parameters("toy-32"))


@pytest.fixture(scope="module")
def group32():
    return T6Group(get_parameters("toy-32"))


class TestTraceIdentities:
    def test_trace_of_identity_is_three(self, context32, group32):
        trace = context32.trace_of_fp6(group32.identity().value)
        assert trace.coefficients == (3, 0)

    def test_ladder_matches_direct_traces_small_exponents(self, context32, group32):
        g = group32.generator()
        base = context32.trace_of_fp6(g.value)
        for exponent in range(0, 20):
            direct = context32.trace_of_fp6((g ** exponent).value)
            laddered = context32.exponentiate(base, exponent)
            assert laddered == direct, f"mismatch at exponent {exponent}"

    def test_ladder_matches_direct_traces_random_exponents(self, context32, group32, rng):
        g = group32.generator()
        base = context32.trace_of_fp6(g.value)
        for _ in range(5):
            exponent = rng.randrange(1, 1 << 28)
            direct = context32.trace_of_fp6((g ** exponent).value)
            assert context32.exponentiate(base, exponent) == direct

    def test_negative_exponent_is_conjugate(self, context32, group32):
        g = group32.generator()
        base = context32.trace_of_fp6(g.value)
        minus = context32.exponentiate(base, -7)
        direct = context32.trace_of_fp6((g ** -7).value)
        assert minus == direct

    def test_trace_is_invariant_on_conjugates(self, context32, group32, rng):
        g = group32.generator()
        element = g ** rng.randrange(2, 1 << 20)
        conjugate = element.frobenius(2)
        assert context32.trace_of_fp6(element.value) == context32.trace_of_fp6(conjugate.value)

    def test_ladder_at_170_bits(self):
        params = get_parameters("ceilidh-170")
        context = XtrContext(params)
        group = T6Group(params)
        g = group.generator()
        base = context.trace_of_fp6(g.value)
        exponent = 0xDEADBEEFCAFEBABE
        direct = context.trace_of_fp6((g ** exponent).value)
        assert context.exponentiate(base, exponent) == direct

    def test_operation_count_estimate(self, context32):
        assert context32.ladder_multiplication_count(170) == 680


class TestXtrKeyAgreement:
    def test_shared_secret(self):
        system = XtrSystem(get_parameters("toy-32"))
        rng = random.Random(1)
        alice = system.generate_keypair(rng)
        bob = system.generate_keypair(rng)
        assert system.shared_trace(alice, bob.public) == system.shared_trace(bob, alice.public)

    def test_derived_keys_agree(self):
        system = XtrSystem(get_parameters("toy-32"))
        rng = random.Random(2)
        alice = system.generate_keypair(rng)
        bob = system.generate_keypair(rng)
        assert system.derive_key(alice, bob.public) == system.derive_key(bob, alice.public)

    def test_third_party_disagrees(self):
        system = XtrSystem(get_parameters("toy-32"))
        rng = random.Random(3)
        alice, bob, eve = (system.generate_keypair(rng) for _ in range(3))
        assert system.shared_trace(eve, bob.public) != system.shared_trace(alice, bob.public)

    def test_wire_encoding_roundtrip(self):
        system = XtrSystem(get_parameters("toy-32"))
        rng = random.Random(4)
        keypair = system.generate_keypair(rng)
        data = system.encode_trace(keypair.public)
        assert len(data) == system.public_size_bytes()
        assert system.decode_trace(data) == keypair.public

    def test_decode_rejects_bad_lengths_and_ranges(self):
        system = XtrSystem(get_parameters("toy-32"))
        with pytest.raises(ParameterError):
            system.decode_trace(b"\x00")
        width = system.public_size_bytes() // 2
        too_big = system.params.p.to_bytes(width, "big") * 2
        with pytest.raises(ParameterError):
            system.decode_trace(too_big)

    def test_same_bandwidth_as_ceilidh(self):
        from repro.torus.encoding import compressed_size_bytes

        params = get_parameters("ceilidh-170")
        assert XtrSystem(params).public_size_bytes() == compressed_size_bytes(params)
