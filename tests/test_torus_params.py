"""Tests for CEILIDH parameter sets and generation."""

import random

import pytest

from repro.errors import ParameterError
from repro.torus.params import (
    CEILIDH_170,
    NAMED_PARAMETERS,
    TOY_20,
    TOY_32,
    TOY_64,
    TorusParameters,
    generate_parameters,
    get_parameters,
)


class TestNamedParameters:
    @pytest.mark.parametrize("params", list(NAMED_PARAMETERS.values()), ids=lambda p: p.name)
    def test_all_named_sets_validate(self, params):
        params.validate()

    def test_ceilidh_170_size(self):
        assert CEILIDH_170.p_bits == 170
        assert CEILIDH_170.p % 9 in (2, 5)
        assert CEILIDH_170.q_bits >= 160

    def test_torus_order_identity(self):
        for params in (TOY_20, TOY_32, TOY_64, CEILIDH_170):
            assert params.torus_order == params.p ** 2 - params.p + 1
            assert params.q * params.cofactor == params.torus_order

    def test_compression_factor(self):
        assert CEILIDH_170.compression_factor == 3

    def test_lookup(self):
        assert get_parameters("toy-32") is TOY_32
        with pytest.raises(ParameterError):
            get_parameters("nonexistent")


class TestValidation:
    def test_rejects_wrong_residue(self):
        bad = TorusParameters(name="bad", p=19, q=7, cofactor=(19 * 19 - 19 + 1) // 7)
        with pytest.raises(ParameterError):
            bad.validate()

    def test_rejects_composite_q(self):
        params = TOY_20
        bad = TorusParameters(
            name="bad", p=params.p, q=params.q * 2, cofactor=params.cofactor
        )
        with pytest.raises(ParameterError):
            bad.validate()

    def test_rejects_wrong_cofactor(self):
        params = TOY_20
        bad = TorusParameters(name="bad", p=params.p, q=params.q, cofactor=params.cofactor + 1)
        with pytest.raises(ParameterError):
            bad.validate()


class TestGeneration:
    def test_generate_small_set(self):
        params = generate_parameters(28, random.Random(11), max_cofactor_bits=64)
        params.validate()
        assert params.p_bits == 28
        assert params.p % 9 in (2, 5)

    def test_generated_sets_differ_by_seed(self):
        a = generate_parameters(26, random.Random(1), max_cofactor_bits=64)
        b = generate_parameters(26, random.Random(2), max_cofactor_bits=64)
        assert a.p != b.p

    def test_custom_name(self):
        params = generate_parameters(24, random.Random(3), max_cofactor_bits=64, name="custom")
        assert params.name == "custom"
