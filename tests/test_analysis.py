"""Tests for the table/figure regeneration layer."""

import pytest

from repro.analysis.figures import (
    bandwidth_comparison,
    fig1_operation_counts,
    fig2_platform_inventory,
    fig34_hierarchy_breakdown,
    fig5_parallel_speedup,
)
from repro.analysis.report import paper_vs_measured, render_table
from repro.analysis.tables import table1, table2, table3
from repro.torus.params import get_parameters


class TestTables:
    def test_table1_rows_and_shape(self, platform):
        rows = table1(platform)
        operations = {(r.bit_length, r.operation) for r in rows}
        assert (170, "modular multiplication") in operations
        assert (160, "modular multiplication") in operations
        assert (1024, "modular multiplication") in operations
        assert (0, "interrupt handling") in operations
        for row in rows:
            assert row.measured_cycles > 0
            if row.paper_cycles:
                assert 0.5 < row.ratio < 2.5  # within ~2x of every paper figure

    def test_table2_rows(self, platform):
        rows = table2(platform)
        assert len(rows) == 6
        by_key = {(r.architecture, r.operation): r.measured_cycles for r in rows}
        # Type-B is faster than Type-A for every operation.
        for operation in ("T6 multiplication", "ECC point addition", "ECC point doubling"):
            assert by_key[("Type-B", operation)] < by_key[("Type-A", operation)]

    def test_table3_rows(self, platform):
        rows = table3(platform)
        assert len(rows) == 3
        by_name = {r.system: r for r in rows}
        torus = by_name["170-bit torus (CEILIDH)"]
        rsa = by_name["1024-bit RSA"]
        ecc = by_name["160-bit ECC"]
        assert ecc.measured_ms < torus.measured_ms < rsa.measured_ms
        assert torus.area_slices == rsa.area_slices == ecc.area_slices
        for row in rows:
            assert row.ratio is not None and 0.5 < row.ratio < 2.5


class TestFigures:
    def test_fig1_counts(self, toy32_params):
        profiles = fig1_operation_counts(toy32_params)
        by_key = {(p.level, p.operation): p.counts for p in profiles}
        assert by_key[("Fp6 (F1)", "mul (18M)")].mul == 18
        assert by_key[("Fp", "mul")].mul == 1
        assert by_key[("Fp", "add")].additions_total == 1
        # The conversion maps are linear: no Fp inversions.
        assert by_key[("F1 <-> F2", "tau")].inv == 0
        # Compression needs at least one inversion (the 1/(1 - alpha) division).
        assert by_key[("T6", "rho (compress)")].inv >= 1

    def test_fig2_inventory(self, platform):
        inventory = fig2_platform_inventory(platform)
        assert inventory["core_instruction_count"] == 7
        assert inventory["num_cores"] == platform.config.num_cores
        assert inventory["area_slices_total"] == 5419

    def test_fig34_breakdown(self, platform):
        breakdowns = fig34_hierarchy_breakdown(platform)
        by_key = {(b.hierarchy, b.operation): b for b in breakdowns}
        t6_a = by_key[("type-a", "T6 multiplication")]
        t6_b = by_key[("type-b", "T6 multiplication")]
        assert t6_a.communication_fraction > 0.4
        assert t6_b.communication_fraction < 0.2
        assert t6_a.total_cycles > t6_b.total_cycles

    def test_fig5_speedup(self):
        points = fig5_parallel_speedup(128, [1, 2, 4])
        assert [p.num_cores for p in points] == [1, 2, 4]
        assert points[0].speedup_vs_single_core == pytest.approx(1.0)
        assert points[-1].speedup_vs_single_core > 1.5
        assert points[-1].cycles < points[0].cycles
        # Transfers appear only with more than one core.
        assert points[0].inter_core_transfers_per_mult == 0
        assert points[-1].inter_core_transfers_per_mult > 0

    def test_bandwidth_comparison(self, ceilidh170_params):
        rows = bandwidth_comparison(ceilidh170_params)
        by_system = {r.system: r for r in rows}
        ceilidh = by_system["CEILIDH (compressed T6)"]
        raw = by_system["raw Fp6 element"]
        assert ceilidh.transmitted_bits * 3 == raw.transmitted_bits
        assert ceilidh.compression_vs_fp6 == pytest.approx(3.0)
        assert ceilidh.transmitted_bits == 340


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "b"], [(1, 2.5), ("x", None)], title="demo")
        assert "demo" in text and "2.50" in text and "-" in text

    def test_paper_vs_measured(self):
        line = paper_vs_measured("MM", 300, 193)
        assert "x1.55" in line
        assert "no paper value" in paper_vs_measured("MM", 300, None)
