"""Tests for the base prime field (repro.field.fp)."""

import pytest

from repro.errors import FieldMismatchError, NotInvertibleError, ParameterError
from repro.field.fp import FpElement, PrimeField


@pytest.fixture(scope="module")
def field():
    return PrimeField(10007)


class TestPrimeFieldConstruction:
    def test_rejects_composite(self):
        with pytest.raises(ParameterError):
            PrimeField(10006)

    def test_rejects_too_small(self):
        with pytest.raises(ParameterError):
            PrimeField(1)

    def test_check_can_be_skipped(self):
        assert PrimeField(10006, check_prime=False).p == 10006

    def test_equality_and_hash(self):
        assert PrimeField(13) == PrimeField(13)
        assert PrimeField(13) != PrimeField(17)
        assert hash(PrimeField(13)) == hash(PrimeField(13))


class TestPrimeFieldArithmetic:
    def test_add_wraps(self, field):
        assert field.add(field.p - 1, 5) == 4

    def test_sub_wraps(self, field):
        assert field.sub(3, 10) == field.p - 7

    def test_neg(self, field):
        assert field.neg(0) == 0
        assert field.neg(1) == field.p - 1

    def test_mul_and_sqr(self, field):
        assert field.mul(123, 456) == 123 * 456 % field.p
        assert field.sqr(321) == 321 * 321 % field.p

    def test_inv(self, field):
        for a in (1, 2, 5000, field.p - 1):
            assert field.mul(a, field.inv(a)) == 1

    def test_inv_zero_raises(self, field):
        with pytest.raises(NotInvertibleError):
            field.inv(0)

    def test_pow_negative_exponent(self, field):
        assert field.pow(3, -1) == field.inv(3)
        assert field.pow(3, -2) == field.inv(field.mul(3, 3))

    def test_half(self, field):
        for a in (0, 1, 2, 9999, field.p - 1):
            assert field.mul(field.half(a), 2) == a

    def test_sqrt_and_is_square(self, field):
        value = field.sqr(1234)
        root = field.sqrt(value)
        assert field.sqr(root) == value
        assert field.is_square(value)
        assert field.is_square(0)

    def test_reduce(self, field):
        assert field.reduce(field.p + 5) == 5
        assert field.reduce(-1) == field.p - 1

    def test_random_element_in_range(self, field, rng):
        for _ in range(20):
            assert 0 <= field.random_element(rng) < field.p
            assert 0 < field.random_nonzero(rng) < field.p


class TestFpElement:
    def test_operators(self, field):
        a, b = field(20), field(9990)
        assert (a + b).value == field.add(20, 9990)
        assert (a - b).value == field.sub(20, 9990)
        assert (a * b).value == field.mul(20, 9990)
        assert (a / b) * b == a
        assert (-a).value == field.neg(20)
        assert (a ** 3).value == field.pow(20, 3)

    def test_int_coercion(self, field):
        a = field(20)
        assert (a + 5).value == 25
        assert (5 + a).value == 25
        assert (5 - a).value == field.sub(5, 20)
        assert int(a) == 20

    def test_equality_with_int(self, field):
        assert field(20) == 20
        assert field(20) == 20 + field.p

    def test_inverse_and_sqrt(self, field):
        a = field(33)
        assert (a * a.inverse()) == 1
        assert (a * a).sqrt() in (a, -a)

    def test_zero_one_helpers(self, field):
        assert field.zero().is_zero()
        assert not field.one().is_zero()

    def test_cross_field_rejected(self, field):
        other = PrimeField(13)
        with pytest.raises(FieldMismatchError):
            _ = field(1) + other(1)

    def test_division_by_zero(self, field):
        with pytest.raises(NotInvertibleError):
            _ = field(1) / field(0)
