"""Tests for the generic extension field construction."""

import random

import pytest

from repro.errors import FieldMismatchError, ParameterError
from repro.field.extension import ExtensionField
from repro.field.fp import PrimeField


@pytest.fixture(scope="module")
def field():
    return PrimeField(1009)


@pytest.fixture(scope="module")
def ext(field):
    # 1009 = 1 mod 4, so x^2 + 1 is reducible; use x^2 + x + 7 instead if irreducible.
    # The constructor verifies irreducibility, so build one that passes.
    for c in range(2, 50):
        try:
            return ExtensionField(field, [c, 1, 1], name="Fq2", var="x")
        except ParameterError:
            continue
    raise RuntimeError("no irreducible quadratic found")


class TestConstruction:
    def test_reducible_modulus_rejected(self, field):
        with pytest.raises(ParameterError):
            ExtensionField(field, [2, 3, 1])  # (x+1)(x+2)

    def test_non_monic_modulus_normalised(self, field):
        ext = ExtensionField(field, [4, 2, 2], check_irreducible=False)
        assert ext.modulus[-1] == 1

    def test_degree(self, ext):
        assert ext.degree == 2

    def test_constant_modulus_rejected(self, field):
        with pytest.raises(ParameterError):
            ExtensionField(field, [5])


class TestArithmetic:
    def test_add_sub_neg(self, ext, rng):
        a, b = ext.random_element(rng), ext.random_element(rng)
        assert ext.sub(ext.add(a, b), b) == a
        assert ext.add(a, ext.neg(a)).is_zero()

    def test_mul_commutative_associative(self, ext, rng):
        a, b, c = (ext.random_element(rng) for _ in range(3))
        assert ext.mul(a, b) == ext.mul(b, a)
        assert ext.mul(ext.mul(a, b), c) == ext.mul(a, ext.mul(b, c))

    def test_distributivity(self, ext, rng):
        a, b, c = (ext.random_element(rng) for _ in range(3))
        assert ext.mul(a, ext.add(b, c)) == ext.add(ext.mul(a, b), ext.mul(a, c))

    def test_inverse(self, ext, rng):
        a = ext.random_nonzero(rng)
        assert ext.mul(a, ext.inv(a)).is_one()

    def test_inverse_of_zero_raises(self, ext):
        with pytest.raises(ParameterError):
            ext.inv(ext.zero())

    def test_pow_matches_repeated_multiplication(self, ext, rng):
        a = ext.random_nonzero(rng)
        expected = ext.one()
        for _ in range(7):
            expected = ext.mul(expected, a)
        assert ext.pow(a, 7) == expected

    def test_pow_negative(self, ext, rng):
        a = ext.random_nonzero(rng)
        assert ext.mul(ext.pow(a, -3), ext.pow(a, 3)).is_one()

    def test_operator_overloads(self, ext, rng):
        a, b = ext.random_nonzero(rng), ext.random_nonzero(rng)
        assert a + b == ext.add(a, b)
        assert a - b == ext.sub(a, b)
        assert a * b == ext.mul(a, b)
        assert (a / b) * b == a
        assert a ** 2 == ext.mul(a, a)
        assert -a == ext.neg(a)

    def test_cross_field_rejected(self, ext, field):
        other = ExtensionField(field, ext.modulus, check_irreducible=False)
        # Same parameters but different instance: equality holds, so arithmetic works.
        assert ext == other
        third = PrimeField(2003)
        incompatible = None
        for c in range(2, 50):
            try:
                incompatible = ExtensionField(third, [c, 1, 1])
                break
            except ParameterError:
                continue
        with pytest.raises(FieldMismatchError):
            _ = ext.one() + incompatible.one()


class TestGaloisStructure:
    def test_frobenius_is_pth_power(self, ext, rng):
        a = ext.random_element(rng)
        assert ext.frobenius(a, 1) == ext.pow(a, ext.base.p)

    def test_frobenius_order(self, ext, rng):
        a = ext.random_element(rng)
        assert ext.frobenius(ext.frobenius(a, 1), 1) == a  # degree 2

    def test_frobenius_fixes_base_field(self, ext):
        a = ext.from_base(123)
        assert ext.frobenius(a, 1) == a

    def test_norm_multiplicative(self, ext, rng):
        a, b = ext.random_nonzero(rng), ext.random_nonzero(rng)
        f = ext.base
        assert ext.norm(ext.mul(a, b)) == f.mul(ext.norm(a), ext.norm(b))

    def test_trace_additive(self, ext, rng):
        a, b = ext.random_element(rng), ext.random_element(rng)
        f = ext.base
        assert ext.trace(ext.add(a, b)) == f.add(ext.trace(a), ext.trace(b))

    def test_norm_of_base_element(self, ext):
        # N(c) = c^degree for c in Fp.
        f = ext.base
        assert ext.norm(ext.from_base(7)) == f.pow(7, ext.degree)

    def test_conjugates_product_is_norm(self, ext, rng):
        a = ext.random_nonzero(rng)
        product = ext.one()
        for conjugate in a.conjugates():
            product = ext.mul(product, conjugate)
        assert product.in_base_field()
        assert product.scalar_part() == ext.norm(a)

    def test_generator_satisfies_modulus(self, ext):
        t = ext.generator()
        # t^2 + t + c = 0  ->  t^2 = -(t + c)
        c = ext.modulus[0]
        lhs = ext.mul(t, t)
        rhs = ext.neg(ext.add(t, ext.from_base(c)))
        assert lhs == rhs
