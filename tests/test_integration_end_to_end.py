"""End-to-end integration tests.

These tie the layers together the way the paper's system does: CEILIDH
protocol traffic whose group operations run through the level-2 sequences and
(at toy sizes) through the cycle-accurate coprocessor, plus assertions on the
qualitative results the paper reports (compression factor, Type-A/Type-B
speed-up, the ECC < torus < RSA ordering).
"""

import random

import pytest

from repro.ecc.curves import SECP160R1
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.montgomery.domain import MontgomeryDomain
from repro.soc.level2 import EngineBackend, SoftwareBackend
from repro.soc.sequences import fp6_multiplication_program, fp6_operand_memory, fp6_result_from_memory
from repro.soc.system import Platform
from repro.torus.ceilidh import CeilidhSystem
from repro.torus.encoding import bandwidth_summary, encode_compressed
from repro.torus.params import CEILIDH_170, get_parameters
from repro.torus.t6 import T6Group


class TestCeilidhOverThePlatform:
    """CEILIDH key agreement where every Fp6 multiplication of one
    exponentiation is executed through the simulated coprocessor."""

    def _platform_exponentiation(self, group, platform, element, exponent):
        """Square-and-multiply where each Fp6 product runs on the coprocessor."""
        engine = platform.engine_for(group.params.p)
        backend = EngineBackend(engine)
        program = fp6_multiplication_program()
        fp6 = group.fp6

        def multiply(a, b):
            memory = fp6_operand_memory(engine.domain, a, b)
            program.execute(backend, memory)
            return fp6_result_from_memory(engine.domain, fp6, memory)

        result = element.value
        for bit in bin(exponent)[3:]:
            result = multiply(result, result)
            if bit == "1":
                result = multiply(result, element.value)
        return group.element(result, check=False), backend.cycles

    def test_shared_secret_through_coprocessor(self):
        params = get_parameters("toy-64")
        group = T6Group(params)
        platform = Platform()
        rng = random.Random(7)
        generator = group.generator()

        # Small exponents keep the cycle-accurate run short: every Fp6
        # multiplication is ~80 microcoded modular operations.
        alice_private = rng.randrange(2, 1 << 14)
        bob_private = rng.randrange(2, 1 << 14)
        alice_public, cycles_a = self._platform_exponentiation(
            group, platform, generator, alice_private
        )
        bob_public, _ = self._platform_exponentiation(group, platform, generator, bob_private)

        alice_shared, _ = self._platform_exponentiation(group, platform, bob_public, alice_private)
        bob_shared, _ = self._platform_exponentiation(group, platform, alice_public, bob_private)

        assert alice_shared == bob_shared
        # Cross-check against the pure-software group law.
        assert alice_shared == (generator ** (alice_private * bob_private))
        assert cycles_a > 0

    def test_platform_exponentiation_matches_reference(self):
        params = get_parameters("toy-64")
        group = T6Group(params)
        platform = Platform()
        generator = group.generator()
        exponent = 0b1011011
        platform_result, _ = self._platform_exponentiation(group, platform, generator, exponent)
        assert platform_result == generator ** exponent


class TestProtocolInteroperability:
    def test_ceilidh_dh_and_encryption_share_generator(self):
        system = CeilidhSystem("toy-32")
        rng = random.Random(3)
        alice = system.generate_keypair(rng)
        bob = system.generate_keypair(rng)
        key_dh = system.derive_key(alice, bob.public)
        ciphertext = system.encrypt(bob.public, b"integration", rng)
        assert system.decrypt(bob, ciphertext) == b"integration"
        assert len(key_dh) == 32

    def test_wire_format_sizes_match_bandwidth_claim(self):
        system = CeilidhSystem("toy-32")
        rng = random.Random(4)
        keypair = system.generate_keypair(rng)
        wire = encode_compressed(system.params, keypair.public)
        compressed_bits, uncompressed_bits, factor = bandwidth_summary(system.params)
        assert len(wire) * 8 >= compressed_bits
        assert factor == 3
        assert uncompressed_bits == 3 * compressed_bits


class TestPaperHeadlineClaims:
    def test_compression_factor_three_at_170_bits(self):
        compressed_bits, uncompressed_bits, factor = bandwidth_summary(CEILIDH_170)
        assert factor == 3
        assert compressed_bits == 340

    def test_type_b_speedup_direction(self, platform):
        cost = platform.fp6_multiplication_cost(CEILIDH_170.p)
        assert cost.speedup > 2.0  # paper: 3.78x

    def test_full_operation_ordering(self, platform):
        torus = platform.torus_exponentiation_timing(CEILIDH_170)
        rsa = platform.rsa_exponentiation_timing(1024)
        ecc = platform.ecc_scalar_multiplication_timing(SECP160R1)
        assert ecc.milliseconds < torus.milliseconds < rsa.milliseconds

    def test_torus_vs_rsa_factor(self, platform):
        torus = platform.torus_exponentiation_timing(CEILIDH_170)
        rsa = platform.rsa_exponentiation_timing(1024)
        # The paper reports ~5x; the reproduction preserves a clear >2.5x win.
        assert rsa.milliseconds / torus.milliseconds > 2.5

    def test_fp6_sequence_equals_field_multiplication_at_full_size(self, rng):
        field = PrimeField(CEILIDH_170.p)
        fp6 = make_fp6(field)
        domain = MontgomeryDomain(CEILIDH_170.p, word_bits=16)
        backend = SoftwareBackend(domain)
        program = fp6_multiplication_program()
        a, b = fp6.random_element(rng), fp6.random_element(rng)
        memory = fp6_operand_memory(domain, a, b)
        program.execute(backend, memory)
        assert fp6_result_from_memory(domain, fp6, memory) == fp6.mul(a, b)

    @pytest.mark.slow
    def test_full_ceilidh_dh_at_paper_size(self):
        system = CeilidhSystem(CEILIDH_170)
        rng = random.Random(11)
        alice = system.generate_keypair(rng)
        bob = system.generate_keypair(rng)
        assert system.derive_key(alice, bob.public) == system.derive_key(bob, alice.public)
