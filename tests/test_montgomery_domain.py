"""Tests for the Montgomery domain bookkeeping."""

import pytest

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain


@pytest.fixture(scope="module")
def domain(toy32_params):
    return MontgomeryDomain(toy32_params.p, word_bits=16)


class TestConstruction:
    def test_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            MontgomeryDomain(100, word_bits=16)

    def test_rejects_tiny_word(self):
        with pytest.raises(ParameterError):
            MontgomeryDomain(101, word_bits=1)

    def test_word_count_default(self, toy32_params):
        domain = MontgomeryDomain(toy32_params.p, word_bits=16)
        assert domain.num_words == (toy32_params.p.bit_length() + 15) // 16

    def test_explicit_word_count(self, toy32_params):
        domain = MontgomeryDomain(toy32_params.p, word_bits=16, num_words=4)
        assert domain.num_words == 4
        with pytest.raises(ParameterError):
            MontgomeryDomain(toy32_params.p, word_bits=16, num_words=1)

    def test_p_prime_property(self, domain):
        # p * p' = -1 mod r
        assert (domain.modulus * domain.p_prime) % domain.radix == domain.radix - 1


class TestConversions:
    def test_roundtrip(self, domain, rng):
        for _ in range(10):
            x = rng.randrange(domain.modulus)
            assert domain.from_montgomery(domain.to_montgomery(x)) == x

    def test_one(self, domain):
        assert domain.one() == domain.to_montgomery(1)

    def test_words_roundtrip(self, domain, rng):
        x = rng.randrange(domain.modulus)
        assert domain.from_words(domain.to_words(x)) == x
        assert len(domain.modulus_words()) == domain.num_words


class TestReferenceProduct:
    def test_mont_mul_matches_plain_multiplication(self, domain, rng):
        p = domain.modulus
        for _ in range(20):
            x, y = rng.randrange(p), rng.randrange(p)
            xb, yb = domain.to_montgomery(x), domain.to_montgomery(y)
            assert domain.from_montgomery(domain.mont_mul(xb, yb)) == x * y % p

    def test_mont_sqr(self, domain, rng):
        p = domain.modulus
        x = rng.randrange(p)
        xb = domain.to_montgomery(x)
        assert domain.from_montgomery(domain.mont_sqr(xb)) == x * x % p

    def test_redc_range_check(self, domain):
        with pytest.raises(ParameterError):
            domain.redc(domain.modulus * domain.r)
        with pytest.raises(ParameterError):
            domain.redc(-1)

    def test_redc_of_zero(self, domain):
        assert domain.redc(0) == 0
