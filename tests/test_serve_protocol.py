"""Wire-protocol edge cases of the serving layer.

The sans-IO :class:`~repro.serve.protocol.FrameDecoder` is exercised on raw
bytes (truncation, arbitrary chunking, hostile length prefixes); the server
state machine is exercised over real loopback sockets for the failure modes
only a live connection shows: unknown scheme names, protocol-version
mismatches, and mid-stream connection drops that must never take the server
(or its other connections) down.
"""

from __future__ import annotations

import asyncio
import random
import struct

import pytest

from repro.errors import OverloadedError, ProtocolError, ServeError
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ERR_NO_SESSION,
    ERR_UNKNOWN_OPCODE,
    ERR_UNKNOWN_SCHEME,
    ERR_VERSION,
    MAX_FRAME_PAYLOAD,
    OP_ERROR,
    OP_HELLO,
    OP_KA_INIT,
    OP_WELCOME,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    encode_frame,
    pack_error,
    pack_verify,
    pack_welcome,
    parse_error,
    parse_verify,
    parse_welcome,
    read_frame,
)
from repro.serve.server import ServeServer


def run(coroutine):
    return asyncio.run(coroutine)


# -- sans-IO framing -----------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(OP_HELLO, b"ceilidh-170"))
        assert frames == [Frame(PROTOCOL_VERSION, OP_HELLO, b"ceilidh-170")]
        assert decoder.pending_bytes == 0

    def test_empty_payload_and_coalesced_frames(self):
        decoder = FrameDecoder()
        wire = encode_frame(OP_HELLO) + encode_frame(OP_KA_INIT, b"\x01\x02")
        frames = decoder.feed(wire)
        assert [f.opcode for f in frames] == [OP_HELLO, OP_KA_INIT]
        assert frames[0].payload == b""
        assert frames[1].payload == b"\x01\x02"

    def test_byte_at_a_time_chunking(self):
        decoder = FrameDecoder()
        wire = encode_frame(OP_KA_INIT, b"chunked-payload")
        collected = []
        for index in range(len(wire)):
            collected += decoder.feed(wire[index : index + 1])
        assert collected == [Frame(PROTOCOL_VERSION, OP_KA_INIT, b"chunked-payload")]

    def test_truncated_frame_stays_pending(self):
        decoder = FrameDecoder()
        wire = encode_frame(OP_KA_INIT, b"x" * 40)
        assert decoder.feed(wire[:-7]) == []
        assert decoder.pending_bytes == len(wire) - 7
        assert decoder.feed(wire[-7:]) == [Frame(PROTOCOL_VERSION, OP_KA_INIT, b"x" * 40)]

    def test_oversized_length_rejected_before_buffering(self):
        decoder = FrameDecoder()
        hostile = struct.pack(">IBB", MAX_FRAME_PAYLOAD + 3, PROTOCOL_VERSION, OP_HELLO)
        with pytest.raises(ProtocolError, match="frame length"):
            decoder.feed(hostile)
        # The decoder refuses to continue past a framing violation.
        with pytest.raises(ProtocolError, match="dead"):
            decoder.feed(b"more")

    def test_undersized_length_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="frame length"):
            decoder.feed(struct.pack(">IBB", 1, PROTOCOL_VERSION, OP_HELLO))

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame(OP_KA_INIT, b"x" * (MAX_FRAME_PAYLOAD + 1))

    def test_read_frame_eof_at_boundary_is_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(OP_HELLO, b"abc"))
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        first, second = run(scenario())
        assert first.payload == b"abc"
        assert second is None

    def test_read_frame_eof_mid_header_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")  # half a length prefix
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(ProtocolError, match="header"):
            run(scenario())

    def test_read_frame_eof_mid_body_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(OP_KA_INIT, b"x" * 32)[:-5])
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(ProtocolError, match="body"):
            run(scenario())

    def test_read_frame_oversized_length_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME_PAYLOAD + 3) + b"\x01\x01")
            await read_frame(reader)

        with pytest.raises(ProtocolError, match="frame length"):
            run(scenario())


class TestPayloadShapes:
    def test_welcome_round_trip(self):
        payload = pack_welcome("ceilidh-toy32", b"\x04public-bytes")
        assert parse_welcome(payload) == ("ceilidh-toy32", b"\x04public-bytes")

    def test_welcome_truncated_name_rejected(self):
        with pytest.raises(ProtocolError):
            parse_welcome(b"")
        with pytest.raises(ProtocolError):
            parse_welcome(bytes([200]) + b"short")

    def test_verify_round_trip(self):
        payload = pack_verify(b"message", b"signature")
        assert parse_verify(payload) == (b"message", b"signature")

    def test_verify_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            parse_verify(b"\x00\x00")
        with pytest.raises(ProtocolError):
            parse_verify(struct.pack(">I", 100) + b"too short")

    def test_error_round_trip(self):
        code, detail = parse_error(pack_error(ERR_UNKNOWN_SCHEME, "no such scheme"))
        assert code == ERR_UNKNOWN_SCHEME
        assert detail == "no such scheme"


# -- live-server edge cases ----------------------------------------------------


def _server(**overrides) -> ServeServer:
    options = dict(
        schemes=("ceilidh-toy32", "xtr-toy32", "rsa-512"),
        rng=random.Random(0x5E58E),
        workers=1,
    )
    options.update(overrides)
    return ServeServer(**options)


class TestServerEdgeCases:
    def test_unknown_scheme_name_keeps_the_connection(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    with pytest.raises(ServeError, match="unknown-scheme"):
                        await client.negotiate("ceilidh-9999")
                    # The connection survives and a served scheme still works.
                    await client.negotiate("ceilidh-toy32")
                    await client.key_agreement_session(random.Random(1))
                return server.protocol_errors

        assert run(scenario()) == 0

    def test_version_mismatch_errors_and_closes(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(OP_HELLO, b"ceilidh-toy32", version=99))
                await writer.drain()
                frame = await read_frame(reader)
                closed = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return frame, closed, server.protocol_errors

        frame, closed, protocol_errors = run(scenario())
        assert frame.opcode == OP_ERROR
        code, detail = parse_error(frame.payload)
        assert code == ERR_VERSION
        assert "version" in detail
        assert closed is None  # server hung up after the version error
        assert protocol_errors == 1

    def test_operation_before_hello_rejected(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(OP_KA_INIT, b"\x00" * 8))
                await writer.drain()
                frame = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return frame

        frame = run(scenario())
        assert frame.opcode == OP_ERROR
        assert parse_error(frame.payload)[0] == ERR_NO_SESSION

    def test_unknown_opcode_rejected(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(0x7F, b""))
                await writer.drain()
                frame = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return frame

        frame = run(scenario())
        assert frame.opcode == OP_ERROR
        assert parse_error(frame.payload)[0] == ERR_UNKNOWN_OPCODE

    def test_oversized_frame_from_client_closes_only_that_connection(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(struct.pack(">I", MAX_FRAME_PAYLOAD + 1000))
                await writer.drain()
                frame = await read_frame(reader)  # best-effort error frame
                closed = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                # The server keeps serving other clients afterwards.
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    await client.key_agreement_session(random.Random(2))
                return frame, closed, server.protocol_errors

        frame, closed, protocol_errors = run(scenario())
        assert frame.opcode == OP_ERROR
        assert closed is None
        assert protocol_errors == 1

    def test_mid_stream_drop_leaves_the_server_serving(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                # A client that dies inside a frame: half a KA_INIT, then gone.
                _, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(OP_HELLO, b"ceilidh-toy32"))
                await writer.drain()
                partial = encode_frame(OP_KA_INIT, b"y" * 64)[:10]
                writer.write(partial)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)  # let the server observe the drop
                # Every other connection is unaffected.
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    await client.key_agreement_session(random.Random(3))
                return server.protocol_errors

        # The drop is counted against the dropped connection only.
        assert run(scenario()) == 1

    def test_malformed_public_key_answers_bad_request(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(OP_HELLO, b"ceilidh-toy32"))
                await writer.drain()
                welcome = await read_frame(reader)
                writer.write(encode_frame(OP_KA_INIT, b"\xff" * 3))  # junk public
                await writer.drain()
                frame = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return welcome, frame

        welcome, frame = run(scenario())
        assert welcome.opcode == OP_WELCOME
        assert frame.opcode == OP_ERROR
        assert parse_error(frame.payload)[0] == protocol.ERR_BAD_REQUEST
