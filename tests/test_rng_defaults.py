"""The default-randomness policy: SystemRandom everywhere, injection intact.

Regression tests for the library-wide RNG bugfix: every secret sampled
without an explicitly injected generator must come from the one module-level
``random.SystemRandom`` (:data:`repro.nt.sampling.DEFAULT_RNG`), never from
a per-call Mersenne Twister — and an injected seeded generator must still
reproduce byte-identical wire output across every registry scheme, which is
what keeps the deterministic tests and benchmarks meaningful.
"""

from __future__ import annotations

import random

import pytest

import repro.nt.sampling as sampling
from repro.nt.sampling import DEFAULT_RNG, resolve_rng, sample_exponent
from repro.pkc import get_scheme


class CountingRandom(random.Random):
    """A seeded generator that records whether it was consulted."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self.calls = 0

    def random(self):
        self.calls += 1
        return super().random()

    def getrandbits(self, k):
        self.calls += 1
        return super().getrandbits(k)


class TestDefaultRngPolicy:
    def test_default_is_the_system_csprng(self):
        assert isinstance(DEFAULT_RNG, random.SystemRandom)

    def test_resolve_prefers_the_injected_generator(self):
        injected = random.Random(1)
        assert resolve_rng(injected) is injected

    def test_resolve_falls_back_to_the_module_default(self):
        assert resolve_rng(None) is sampling.DEFAULT_RNG

    def test_sample_exponent_consults_the_default(self, monkeypatch):
        spy = CountingRandom(7)
        monkeypatch.setattr(sampling, "DEFAULT_RNG", spy)
        sample_exponent(1 << 64)
        assert spy.calls > 0

    @pytest.mark.parametrize(
        "site",
        [
            "ceilidh-keygen",
            "ecdh-keygen",
            "xtr-keygen",
            "prime-search",
            "field-element",
        ],
    )
    def test_every_default_sampling_site_routes_through_it(self, site, monkeypatch):
        """Keygen/prime/field sampling with no rng reaches DEFAULT_RNG."""
        spy = CountingRandom(11)
        monkeypatch.setattr(sampling, "DEFAULT_RNG", spy)
        if site == "ceilidh-keygen":
            from repro.torus.ceilidh import CeilidhSystem

            CeilidhSystem("toy-20").generate_keypair()
        elif site == "ecdh-keygen":
            get_scheme("ecdh-p160", fresh=True).keygen()
        elif site == "xtr-keygen":
            from repro.xtr.keyagreement import XtrSystem

            XtrSystem("toy-20").generate_keypair()
        elif site == "prime-search":
            from repro.nt.primegen import random_prime

            random_prime(24)
        else:
            from repro.field.fp import PrimeField

            PrimeField(1009).random_element()
        assert spy.calls > 0

    def test_monkeypatched_default_makes_keygen_reproducible(self, monkeypatch):
        """The default is resolved at call time, not bound at import."""
        publics = []
        for _ in range(2):
            monkeypatch.setattr(sampling, "DEFAULT_RNG", random.Random(99))
            scheme = get_scheme("ceilidh-toy32", fresh=True)
            publics.append(scheme.keygen().public_wire)
        assert publics[0] == publics[1]


#: Scheme names small enough to regenerate keys repeatedly in a test.
DETERMINISM_SCHEMES = ("ceilidh-toy32", "ceilidh-toy64", "ecdh-p160", "rsa-512", "xtr-toy32")


class TestSeededWireDeterminism:
    """An injected seeded rng reproduces byte-identical wire output."""

    @pytest.mark.parametrize("name", DETERMINISM_SCHEMES)
    def test_keygen_wire_bytes(self, name):
        def wire():
            scheme = get_scheme(name, fresh=True)
            kwargs = {"fresh": True} if name.startswith("rsa") else {}
            return scheme.keygen(random.Random(0xD5EED), **kwargs).public_wire

        assert wire() == wire()

    @pytest.mark.parametrize("name", DETERMINISM_SCHEMES)
    def test_protocol_wire_bytes(self, name):
        from repro.pkc.base import ENCRYPTION, SIGNATURE

        def transcripts():
            scheme = get_scheme(name, fresh=True)
            keypair = scheme.keygen(random.Random(1))
            out = [keypair.public_wire]
            if ENCRYPTION in scheme.capabilities:
                out.append(
                    scheme.encrypt(keypair.public_wire, b"determinism", random.Random(2))
                )
            if SIGNATURE in scheme.capabilities:
                out.append(scheme.sign(keypair, b"determinism", random.Random(3)))
            return out

        assert transcripts() == transcripts()
