"""Tests for repro.nt.primality."""

import pytest

from repro.nt.primality import SMALL_PRIMES, is_prime, is_probable_prime, next_prime


class TestSmallPrimes:
    def test_sieve_contents(self):
        assert SMALL_PRIMES[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_sieve_has_no_composites(self):
        for p in SMALL_PRIMES:
            assert all(p % q != 0 for q in range(2, int(p ** 0.5) + 1))


class TestIsProbablePrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 97, 997):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 100, 999, 1001):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_detected(self):
        # Carmichael numbers fool the Fermat test but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 41041, 825265):
            assert not is_probable_prime(n)

    def test_medium_primes(self):
        assert is_probable_prime(10_000_019)
        assert is_probable_prime(2_147_483_647)  # Mersenne prime 2^31 - 1

    def test_medium_composites(self):
        assert not is_probable_prime(10_000_021)  # 4001 * 2521... composite
        assert not is_probable_prime(2_147_483_649)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime((1 << 127) - 1)

    def test_large_known_composite(self):
        # 2^128 + 1 is composite (not a Fermat prime).
        assert not is_probable_prime((1 << 128) + 1)

    def test_product_of_two_large_primes(self):
        p = (1 << 127) - 1
        q = (1 << 89) - 1
        assert not is_probable_prime(p * q)

    def test_ceilidh_170_prime(self):
        from repro.torus.params import CEILIDH_170

        assert is_probable_prime(CEILIDH_170.p)
        assert is_probable_prime(CEILIDH_170.q)

    def test_is_prime_alias(self):
        assert is_prime(101) and not is_prime(100)


class TestNextPrime:
    def test_from_composite(self):
        assert next_prime(8) == 11
        assert next_prime(14) == 17

    def test_from_prime_is_strictly_greater(self):
        assert next_prime(7) == 11
        assert next_prime(2) == 3

    def test_from_small_values(self):
        assert next_prime(0) == 2
        assert next_prime(1) == 2

    def test_result_is_prime(self):
        candidate = next_prime(10 ** 12)
        assert candidate > 10 ** 12
        assert is_probable_prime(candidate)
