"""Tests for the torus exponentiation strategies."""

import pytest

from repro.errors import ParameterError
from repro.torus.exponentiation import (
    ExponentiationCount,
    exponentiate_binary,
    exponentiate_naf,
    exponentiate_window,
    multiplication_counts,
)


class TestStrategiesAgree:
    @pytest.mark.parametrize("exponent", [0, 1, 2, 3, 17, 1023, 65537, 0xDEADBEEF])
    def test_all_strategies_match_group_pow(self, toy32_group, exponent):
        g = toy32_group.generator()
        reference = toy32_group.exponentiate(g, exponent)
        assert exponentiate_binary(g, exponent) == reference
        assert exponentiate_naf(g, exponent) == reference
        assert exponentiate_window(g, exponent) == reference
        assert exponentiate_window(g, exponent, window_bits=2) == reference

    def test_random_exponents(self, toy32_group, rng):
        g = toy32_group.generator()
        for _ in range(5):
            exponent = rng.randrange(1, toy32_group.params.q)
            reference = toy32_group.exponentiate(g, exponent)
            assert exponentiate_binary(g, exponent) == reference
            assert exponentiate_naf(g, exponent) == reference
            assert exponentiate_window(g, exponent) == reference

    def test_negative_exponent(self, toy32_group):
        g = toy32_group.generator()
        assert exponentiate_binary(g, -7) == toy32_group.exponentiate(g, -7)
        assert exponentiate_naf(g, -7) == toy32_group.exponentiate(g, -7)

    def test_bad_window_rejected(self, toy32_group):
        with pytest.raises(ParameterError):
            exponentiate_window(toy32_group.generator(), 5, window_bits=0)


class TestOperationCounts:
    def test_binary_counts(self, toy32_group):
        count = ExponentiationCount(0, 0)
        exponent = 0b1011011
        exponentiate_binary(toy32_group.generator(), exponent, count)
        assert count.squarings == exponent.bit_length() - 1
        assert count.multiplications == bin(exponent).count("1") - 1

    def test_naf_uses_fewer_multiplications_on_dense_exponents(self, toy32_group):
        dense = (1 << 48) - 1  # all ones: binary needs 47 multiplications
        binary_count = ExponentiationCount(0, 0)
        naf_count = ExponentiationCount(0, 0)
        exponentiate_binary(toy32_group.generator(), dense, binary_count)
        exponentiate_naf(toy32_group.generator(), dense, naf_count)
        assert naf_count.multiplications < binary_count.multiplications

    def test_closed_form_counts(self):
        binary = multiplication_counts(170, "binary")
        assert binary.squarings == 169
        assert binary.multiplications == 84
        naf = multiplication_counts(170, "naf")
        assert naf.multiplications < binary.multiplications
        window = multiplication_counts(170, "window4")
        assert window.total < binary.total
        with pytest.raises(ParameterError):
            multiplication_counts(170, "bogus")

    def test_paper_scale_operation_count(self):
        # ~170-bit exponent -> ~254 Fp6 multiplications, the number behind the
        # 20 ms Table 3 entry (254 * ~5908 cycles at 74 MHz).
        count = multiplication_counts(170, "binary")
        assert 240 <= count.total <= 260
