"""Per-rule fixtures for the repo-contract rules (RC201-RC204).

Same discipline as the taint fixtures: every rule has a planted violation
and a clean twin so the suite fails if a rule goes dead or starts firing
on the blessed pattern.
"""

from __future__ import annotations

import textwrap

from repro.audit.engine import run_audit


def audit_snippet(tmp_path, source: str, name: str = "mod.py", strict: bool = False):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_audit(tmp_path, strict=strict)


def new_rules(result):
    return sorted({finding.rule for finding in result.findings if finding.status == "new"})


# -- RC201: RNG hygiene ---------------------------------------------------------


def test_rc201_random_random_constructor(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        import random

        def f():
            rng = random.Random()
            return rng.random()
        """,
    )
    assert "RC201" in new_rules(result)


def test_rc201_bare_module_level_draw(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        import random

        def f(n):
            return random.randrange(n)
        """,
    )
    assert "RC201" in new_rules(result)


def test_rc201_clean_twin_system_random_and_resolve_rng(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        import random

        DEFAULT_RNG = random.SystemRandom()

        def f(n, rng=None):
            rng = resolve_rng(rng)
            return rng.randrange(n)
        """,
    )
    assert "RC201" not in new_rules(result)


def test_rc201_annotation_mentioning_random_is_fine(tmp_path):
    # Only Call nodes are flagged; ``Optional[random.Random]`` annotations
    # are how the seam is typed everywhere in the tree.
    result = audit_snippet(
        tmp_path,
        """
        import random
        from typing import Optional

        def f(n, rng: Optional[random.Random] = None):
            rng = resolve_rng(rng)
            return rng.randrange(n)
        """,
    )
    assert "RC201" not in new_rules(result)


# -- RC202: wire functions route through the funnels ----------------------------


def test_rc202_raw_value_in_encode_function(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def encode_element(field, x):
            return x.value.to_bytes(32, "big")
        """,
    )
    assert "RC202" in new_rules(result)


def test_rc202_clean_twin_routes_through_exit(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def encode_element(field, x):
            return field.exit(x).to_bytes(32, "big")
        """,
    )
    assert "RC202" not in new_rules(result)


def test_rc202_value_as_direct_funnel_argument_is_blessed(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def decode_element(field, raw):
            element = field.one_value(raw.value)
            return element
        """,
    )
    assert "RC202" not in new_rules(result)


def test_rc202_non_wire_function_unconstrained(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def reduce_element(field, x):
            return x.value % field.p
        """,
    )
    assert "RC202" not in new_rules(result)


# -- RC203: resolve the RNG exactly once ----------------------------------------


def test_rc203_resolve_rng_inside_loop(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def keygen_each(count, rng=None):
            out = []
            for _ in range(count):
                r = resolve_rng(rng)
                out.append(r.random())
            return out
        """,
    )
    assert "RC203" in new_rules(result)


def test_rc203_double_resolve_in_batch_entry_point(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def keygen_many(count, rng=None):
            first = resolve_rng(rng)
            second = resolve_rng(rng)
            return first.random() + second.random()
        """,
    )
    assert "RC203" in new_rules(result)


def test_rc203_clean_twin_resolves_once_and_threads(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def keygen_many(count, rng=None):
            rng = resolve_rng(rng)
            return [rng.random() for _ in range(count)]
        """,
    )
    assert "RC203" not in new_rules(result)


# -- RC204: no heavy sync work on the serve event loop --------------------------


def test_rc204_heavy_call_in_serve_async_def(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        async def handle(self, scheme, name):
            pair = keygen(scheme)
            return pair
        """,
        name="serve/handlers.py",
    )
    assert "RC204" in new_rules(result)


def test_rc204_clean_twin_ships_through_executor(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        async def handle(self, loop, scheme, name):
            pair = await loop.run_in_executor(None, keygen, scheme)
            return pair
        """,
        name="serve/handlers.py",
    )
    assert "RC204" not in new_rules(result)


def test_rc204_only_applies_to_serve_modules(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        async def handle(self, scheme, name):
            pair = keygen(scheme)
            return pair
        """,
        name="pkc/helpers.py",
    )
    assert "RC204" not in new_rules(result)


def test_rc204_sync_function_in_serve_is_fine(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def handle(self, scheme, name):
            pair = keygen(scheme)
            return pair
        """,
        name="serve/handlers.py",
    )
    assert "RC204" not in new_rules(result)
