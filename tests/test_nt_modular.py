"""Tests for repro.nt.modular."""

import pytest

from repro.errors import NotInvertibleError, ParameterError
from repro.nt.modular import (
    crt,
    crt_pair,
    egcd,
    jacobi_symbol,
    legendre_symbol,
    modinv,
    multiplicative_order,
    sqrt_mod_prime,
)


class TestEgcd:
    def test_coprime(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_identity_on_zero(self):
        assert egcd(0, 7)[0] == 7
        assert egcd(7, 0)[0] == 7

    def test_negative_inputs(self):
        g, x, y = egcd(-12, 18)
        assert g == 6
        assert -12 * x + 18 * y == 6

    def test_bezout_holds_for_many_pairs(self):
        for a in range(-20, 21, 7):
            for b in range(-15, 16, 4):
                g, x, y = egcd(a, b)
                assert a * x + b * y == g
                assert g >= 0


class TestModinv:
    def test_basic(self):
        assert modinv(3, 11) == 4

    def test_inverse_property(self):
        p = 10007
        for a in (1, 2, 17, 9999, 5003):
            assert a * modinv(a, p) % p == 1

    def test_negative_value(self):
        assert (-3) * modinv(-3, 11) % 11 == 1

    def test_not_invertible(self):
        with pytest.raises(NotInvertibleError):
            modinv(6, 9)

    def test_zero_not_invertible(self):
        with pytest.raises(NotInvertibleError):
            modinv(0, 17)

    def test_bad_modulus(self):
        with pytest.raises(ParameterError):
            modinv(3, 0)

    def test_euclid_path_agrees_with_builtin(self):
        # modinv rides the C-level pow(a, -1, m); the schedulable
        # extended-Euclid variant survives for the word-counting backend
        # and must stay value-identical on every input class.
        import random

        from repro.nt.modular import modinv_euclid

        rng = random.Random(71)
        for modulus in (11, 97, 2**89 - 1, 15):  # odd composite included
            for _ in range(20):
                a = rng.randrange(1, modulus)
                try:
                    expected = modinv(a, modulus)
                except NotInvertibleError:
                    with pytest.raises(NotInvertibleError):
                        modinv_euclid(a, modulus)
                    continue
                assert modinv_euclid(a, modulus) == expected
        with pytest.raises(NotInvertibleError):
            modinv_euclid(0, 17)
        with pytest.raises(ParameterError):
            modinv_euclid(3, 0)


class TestCrt:
    def test_pair(self):
        r, m = crt_pair(2, 3, 3, 5)
        assert m == 15
        assert r % 3 == 2 and r % 5 == 3

    def test_pair_non_coprime_compatible(self):
        r, m = crt_pair(2, 6, 8, 9)
        assert m == 18
        assert r % 6 == 2 and r % 9 == 8

    def test_pair_incompatible(self):
        with pytest.raises(ParameterError):
            crt_pair(1, 6, 2, 9)

    def test_many(self):
        r, m = crt([1, 2, 3], [5, 7, 9])
        assert m == 315
        assert r % 5 == 1 and r % 7 == 2 and r % 9 == 3

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            crt([], [])

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            crt([1, 2], [3])


class TestSymbols:
    def test_legendre_residues(self):
        p = 23
        squares = {pow(x, 2, p) for x in range(1, p)}
        for a in range(1, p):
            expected = 1 if a in squares else -1
            assert legendre_symbol(a, p) == expected

    def test_legendre_zero(self):
        assert legendre_symbol(0, 13) == 0
        assert legendre_symbol(26, 13) == 0

    def test_legendre_rejects_even(self):
        with pytest.raises(ParameterError):
            legendre_symbol(3, 10)

    def test_jacobi_matches_legendre_for_primes(self):
        for p in (7, 11, 13, 17):
            for a in range(p):
                assert jacobi_symbol(a, p) == legendre_symbol(a, p)

    def test_jacobi_multiplicative_in_denominator(self):
        n1, n2 = 9, 25
        for a in range(1, 60):
            assert jacobi_symbol(a, n1 * n2) == jacobi_symbol(a, n1) * jacobi_symbol(a, n2)

    def test_jacobi_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            jacobi_symbol(3, 8)


class TestSqrtModPrime:
    @pytest.mark.parametrize("p", [3, 7, 11, 13, 17, 10007, 1000003])
    def test_roots_square_back(self, p):
        for a in range(1, 30):
            value = a * a % p
            root = sqrt_mod_prime(value, p)
            assert root * root % p == value

    def test_zero(self):
        assert sqrt_mod_prime(0, 13) == 0

    def test_non_residue_raises(self):
        # 5 is a non-residue modulo 7 (squares are 1, 2, 4).
        with pytest.raises(ParameterError):
            sqrt_mod_prime(5, 7)

    def test_p_equal_one_mod_four(self):
        # Forces the full Tonelli-Shanks path.
        p = 1000033  # = 1 mod 4... (1000033 % 4 == 1)
        assert p % 4 == 1
        for a in (2, 3, 9, 12345):
            value = a * a % p
            root = sqrt_mod_prime(value, p)
            assert root * root % p == value


class TestMultiplicativeOrder:
    def test_order_of_generator_mod_prime(self):
        # 3 is a primitive root modulo 7.
        assert multiplicative_order(3, 7, {2: 1, 3: 1}) == 6

    def test_order_divides_group_order(self):
        p = 101
        factorization = {2: 2, 5: 2}  # 100 = 2^2 * 5^2
        for a in (2, 3, 5, 10, 100):
            order = multiplicative_order(a, p, factorization)
            assert pow(a, order, p) == 1
            assert 100 % order == 0

    def test_wrong_factorization_rejected(self):
        with pytest.raises(ParameterError):
            multiplicative_order(3, 7, {2: 1})  # 3^2 != 1 mod 7
