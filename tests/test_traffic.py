"""Tests of the traffic-model subsystem (``repro.traffic``)."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import ParameterError
from repro.serve.server import ServeServer
from repro.traffic.engine import (
    CHANNEL_MESSAGE,
    CHANNEL_OPEN,
    compile_schedule,
    run_traffic,
)
from repro.traffic.model import (
    MIXES,
    ArrivalModel,
    ChannelProfile,
    TrafficMix,
    get_mix,
    zipf_weights,
)


def run(coroutine):
    return asyncio.run(coroutine)


TOY_MIX = TrafficMix(
    name="toy",
    schemes=("ceilidh-toy32", "rsa-512", "xtr-toy32"),
    zipf_exponent=1.0,
    channel_weight=0.7,
    arrivals=ArrivalModel(mean_burst=3.0, mean_gap_seconds=0.001),
    channels=ChannelProfile(
        mean_messages=10.0, min_messages=3, think_seconds=0.0,
        rekey_after_messages=6,
    ),
)

TOY_CAPABILITIES = {
    "ceilidh-toy32": ("key-agreement", "encryption", "signature"),
    "rsa-512": ("encryption", "signature"),
    "xtr-toy32": ("key-agreement",),
}


class TestModel:
    def test_zipf_weights_normalised_and_ranked(self):
        weights = zipf_weights(5, 1.0)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == pytest.approx(2 * weights[1])

    def test_zipf_exponent_zero_is_uniform(self):
        assert zipf_weights(4, 0.0) == [0.25] * 4

    def test_zipf_rejects_empty(self):
        with pytest.raises(ParameterError):
            zipf_weights(0)

    def test_burst_sizes_hit_the_mean(self):
        rng = random.Random(1)
        arrivals = ArrivalModel(mean_burst=4.0)
        sizes = [arrivals.burst_size(rng) for _ in range(4000)]
        assert min(sizes) == 1
        assert 3.5 < sum(sizes) / len(sizes) < 4.5

    def test_gap_seconds_exponential_mean(self):
        rng = random.Random(2)
        arrivals = ArrivalModel(mean_gap_seconds=0.01)
        gaps = [arrivals.gap_seconds(rng) for _ in range(4000)]
        assert 0.008 < sum(gaps) / len(gaps) < 0.012
        assert ArrivalModel(mean_gap_seconds=0.0).gap_seconds(rng) == 0.0

    def test_channel_message_counts_respect_the_floor(self):
        rng = random.Random(3)
        profile = ChannelProfile(mean_messages=8.0, min_messages=4)
        counts = [profile.message_count(rng) for _ in range(2000)]
        assert min(counts) >= 4
        assert max(counts) > 8

    def test_scheme_popularity_is_zipf_skewed(self):
        rng = random.Random(4)
        picks = [TOY_MIX.pick_scheme(rng) for _ in range(6000)]
        counts = {name: picks.count(name) for name in TOY_MIX.schemes}
        # Rank order matches declaration order under zipf_exponent=1.
        assert counts["ceilidh-toy32"] > counts["rsa-512"] > counts["xtr-toy32"]

    def test_session_kinds_respect_capabilities(self):
        rng = random.Random(5)
        for _ in range(500):
            kind = TOY_MIX.pick_session_kind(rng, TOY_CAPABILITIES["rsa-512"])
            assert kind in ("channel", "encryption", "signature")
            kind = TOY_MIX.pick_session_kind(rng, TOY_CAPABILITIES["xtr-toy32"])
            assert kind in ("channel", "key-agreement")

    def test_channel_only_fallback_for_empty_oneshot_support(self):
        mix = TrafficMix(
            name="sig-only",
            schemes=("xtr-toy32",),
            channel_weight=0.0,
            oneshot_weights={"signature": 1.0},
        )
        rng = random.Random(6)
        # XTR has no signature: the draw must fall back to a channel, which
        # every scheme can bootstrap, rather than an unsupported op.
        assert mix.pick_session_kind(rng, ("key-agreement",)) == "channel"

    def test_presets_are_well_formed(self):
        assert "zipf-bursty" in MIXES
        for name, mix in MIXES.items():
            assert mix.name == name
            assert mix.schemes
            assert 0.0 <= mix.channel_weight <= 1.0
        assert get_mix("zipf-bursty") is MIXES["zipf-bursty"]
        with pytest.raises(ParameterError):
            get_mix("no-such-mix")

    def test_compile_schedule_is_deterministic(self):
        one = compile_schedule(TOY_MIX, random.Random("seed"), 40, TOY_CAPABILITIES)
        two = compile_schedule(TOY_MIX, random.Random("seed"), 40, TOY_CAPABILITIES)
        assert one == two
        assert len(one) == 40
        kinds = {planned.kind for planned in one}
        assert "channel" in kinds and len(kinds) > 1
        for planned in one:
            if planned.kind == "channel":
                assert planned.messages >= TOY_MIX.channels.min_messages


class TestEngine:
    def test_traffic_run_accounts_every_request(self):
        """The strict identity: submitted == responses + explicit errors,
        with channels, rekeys and one-shots all flowing."""

        async def scenario():
            async with ServeServer(rng=random.Random(0x7A)) as server:
                host, port = server.address
                report = await run_traffic(
                    host, port, TOY_MIX, clients=4,
                    sessions_per_client=6, seed=3,
                )
                return report, server.channels.stats, server.protocol_errors

        report, stats, protocol_errors = run(scenario())
        assert report.accounted
        assert report.submitted == report.responses  # no refusals expected here
        assert report.channels_opened > 0
        assert report.channel_messages > 0
        assert report.rekeys > 0  # rekey_after_messages=6, mean length 10
        assert report.oneshots > 0
        assert protocol_errors == 0
        assert stats.opened == report.channels_opened
        assert stats.messages == report.channel_messages
        assert stats.evicted_hostile == 0
        # Every cell's histogram counted exactly its completions.
        for entry in report.entries.values():
            assert len(entry.histogram) == entry.count

    def test_schedules_identical_across_runs_same_seed(self):
        async def scenario(seed):
            async with ServeServer(rng=random.Random(0x7B)) as server:
                host, port = server.address
                report = await run_traffic(
                    host, port, TOY_MIX, clients=3,
                    sessions_per_client=5, seed=seed,
                )
                return {
                    key: entry.count for key, entry in report.entries.items()
                }

        first = run(scenario(11))
        second = run(scenario(11))
        third = run(scenario(12))
        assert first == second  # same seed: identical request counts per cell
        assert first != third  # different seed: a different workload

    def test_quota_refusals_are_explicit_and_recovered(self):
        """A tiny token bucket forces ERR_OVER_QUOTA frames; the engine
        counts them as explicit errors and still completes the schedule."""
        from repro.serve.channel import ChannelPolicy

        async def scenario():
            policy = ChannelPolicy(
                bucket_capacity=8.0, bucket_refill_per_second=300.0
            )
            async with ServeServer(
                rng=random.Random(0x7C), channel_policy=policy
            ) as server:
                host, port = server.address
                report = await run_traffic(
                    host, port, TOY_MIX, clients=4,
                    sessions_per_client=4, seed=5,
                )
                return report, server.channels.stats

        report, stats = run(scenario())
        assert report.accounted
        assert report.rejected_quota > 0  # the bucket actually bit
        assert report.explicit_errors == report.rejected_quota
        assert stats.rejected_quota >= report.rejected_quota
        assert stats.evicted_hostile == 0  # refusals never desynced a channel

    def test_handshake_vs_steady_state_split(self):
        async def scenario():
            async with ServeServer(rng=random.Random(0x7D)) as server:
                host, port = server.address
                return await run_traffic(
                    host, port, TOY_MIX, clients=3,
                    sessions_per_client=5, seed=7,
                )

        report = run(scenario())
        handshake = report.handshake_histogram()
        steady = report.steady_state_histogram()
        assert len(handshake) == report.channels_opened
        assert len(steady) == report.channel_messages
        # The whole point of channels: a record is much cheaper than a
        # handshake (symmetric crypto vs a public-key operation).
        assert steady.percentile(0.5) < handshake.percentile(0.5)
        open_keys = [k for k in report.entries if k.endswith(CHANNEL_OPEN)]
        message_keys = [k for k in report.entries if k.endswith(CHANNEL_MESSAGE)]
        assert open_keys and message_keys

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ParameterError):
            run(run_traffic("127.0.0.1", 1, TOY_MIX, clients=0))
        with pytest.raises(ParameterError):
            run(run_traffic("127.0.0.1", 1, TOY_MIX, sessions_per_client=0))
