"""Tests of the multi-process cluster serving layer.

The pure pieces (consistent-hash ring, load plans, configuration
validation) are tested exhaustively; the process-spawning pieces boot real
worker clusters on loopback and drive them with the load harness, keeping
worker counts and session counts small — every spawn pays an interpreter
start plus the package import.

The lifecycle tests are the acceptance story: a SIGKILLed worker comes
back and the load sees zero client-visible errors; a SIGTERM drain loses
zero in-flight requests; a rolling restart keeps the port serving
throughout.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal

import pytest

from repro.errors import ParameterError
from repro.serve.client import LoadPhase, LoadPlan, ServeClient, run_load
from repro.serve.cluster import ClusterSupervisor, reuseport_available
from repro.serve.router import HashRing
from repro.serve.scheduler import SchemeHost


def run(coroutine):
    return asyncio.run(coroutine)


def _cluster(**overrides) -> ClusterSupervisor:
    options = dict(
        workers=2,
        schemes=("ceilidh-toy32",),
        rng=random.Random(0xC1045E8),
    )
    options.update(overrides)
    return ClusterSupervisor(**options)


class TestHashRing:
    def test_lookup_is_deterministic_and_covers_all_slots(self):
        ring = HashRing(range(4))
        keys = [f"scheme-{i}" for i in range(64)]
        first = [ring.lookup(key) for key in keys]
        again = [ring.lookup(key) for key in keys]
        assert first == again
        # With 64 keys over 4 slots every slot should own something.
        assert set(first) == {0, 1, 2, 3}

    def test_preference_orders_every_slot_exactly_once(self):
        ring = HashRing(range(5))
        order = ring.preference("ceilidh-170")
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_lookup_respects_liveness(self):
        ring = HashRing(range(3))
        owner = ring.lookup("xtr-170")
        fallback = ring.lookup("xtr-170", alive=set(range(3)) - {owner})
        assert fallback != owner
        assert ring.lookup("xtr-170", alive=()) is None

    def test_removing_one_slot_only_remaps_its_keys(self):
        """The consistent-hashing property: keys not owned by the dead slot
        keep their placement when it drops out."""
        ring = HashRing(range(4))
        keys = [f"key-{i}" for i in range(128)]
        before = {key: ring.lookup(key) for key in keys}
        dead = 2
        alive = set(range(4)) - {dead}
        for key in keys:
            after = ring.lookup(key, alive=alive)
            if before[key] != dead:
                assert after == before[key]
            else:
                assert after in alive

    def test_restart_keeps_the_map(self):
        """Two rings over the same slots agree — a respawned worker (same
        index, new pid) reclaims exactly the schemes it owned."""
        one, two = HashRing(range(3)), HashRing(range(3))
        for i in range(32):
            assert one.lookup(f"s{i}") == two.lookup(f"s{i}")

    def test_rejects_empty_and_bad_vnodes(self):
        with pytest.raises(ParameterError):
            HashRing(())
        with pytest.raises(ParameterError):
            HashRing(range(2), vnodes=0)


class TestLoadPlan:
    def test_from_mix_and_back(self):
        mix = [("ceilidh-170", "key-agreement"), ("rsa-1024", "encryption")]
        plan = LoadPlan.from_mix(mix)
        assert plan.mix() == mix
        assert all(phase.weight == 1.0 for phase in plan.phases)

    def test_uniform_is_the_cross_product(self):
        plan = LoadPlan.uniform(["a", "b"], ["key-agreement", "signature"])
        assert len(plan.phases) == 4
        assert ("b", "signature") in plan.mix()

    def test_weight_scales_sessions_with_a_floor_of_one(self):
        assert LoadPhase("s", "key-agreement", weight=2.0).sessions(4) == 8
        assert LoadPhase("s", "key-agreement", weight=0.5).sessions(4) == 2
        assert LoadPhase("s", "key-agreement", weight=0.01).sessions(4) == 1

    def test_run_load_accepts_a_plan(self):
        """A weighted plan drives a plain in-process server."""
        from repro.serve.server import ServeServer

        async def scenario():
            server = ServeServer(
                schemes=("ceilidh-toy32",), rng=random.Random(4), workers=2
            )
            await server.start()
            try:
                host, port = server.address
                plan = LoadPlan(
                    [LoadPhase("ceilidh-toy32", "key-agreement", weight=2.0)]
                )
                return await run_load(
                    host, port, plan=plan, clients=2, sessions_per_client=2
                )
            finally:
                await server.stop()

        report = run(scenario())
        assert report.total_errors == 0
        # weight 2.0 doubles the per-client sessions: 2 clients x 4.
        assert report.total_sessions == 8


class TestClusterConfiguration:
    def test_rejects_process_executor_and_bad_modes(self):
        with pytest.raises(ParameterError):
            ClusterSupervisor(workers=2, executor="process")
        with pytest.raises(ParameterError):
            ClusterSupervisor(workers=0)
        with pytest.raises(ParameterError):
            ClusterSupervisor(mode="sharded")

    def test_preset_keys_pin_the_host_identity(self):
        """A SchemeHost built with preset keys serves them verbatim — the
        mechanism that gives every cluster worker one shared identity."""
        rng = random.Random(11)
        donor = SchemeHost(schemes=("ceilidh-toy32",), rng=rng)
        key = donor.server_key("ceilidh-toy32")
        clone = SchemeHost(
            schemes=("ceilidh-toy32",), preset_keys={"ceilidh-toy32": key}
        )
        assert clone.server_key("ceilidh-toy32") is key


@pytest.mark.skipif(not reuseport_available(), reason="SO_REUSEPORT not available")
class TestReuseportCluster:
    def test_load_balances_with_zero_errors_and_one_identity(self):
        async def scenario():
            async with _cluster(mode="reuseport") as cluster:
                host, port = cluster.address
                report = await run_load(
                    host, port, [("ceilidh-toy32", "key-agreement")],
                    clients=4, sessions_per_client=3,
                )
                # However the kernel spread the connections, every WELCOME
                # must advertise the same long-lived server key.
                publics = set()
                for _ in range(6):
                    async with ServeClient(host, port) as client:
                        publics.add(await client.negotiate("ceilidh-toy32"))
                return report, publics, cluster.worker_pids()

        report, publics, pids = run(scenario())
        assert report.total_errors == 0
        assert report.total_sessions == 12
        assert len(publics) == 1
        assert len(pids) == 2 and all(pids)


class TestRouterCluster:
    def test_scheme_affinity_and_zero_errors(self):
        async def scenario():
            async with _cluster(
                mode="router", schemes=("ceilidh-toy32", "xtr-toy32")
            ) as cluster:
                host, port = cluster.address
                report = await run_load(
                    host, port,
                    [("ceilidh-toy32", "key-agreement"),
                     ("xtr-toy32", "key-agreement")],
                    clients=3, sessions_per_client=2,
                )
                assert cluster.router is not None
                ring = cluster.router.ring
                expected = {
                    ring.lookup(scheme)
                    for scheme in ("ceilidh-toy32", "xtr-toy32")
                }
                return report, dict(cluster.router.stats.routed), expected

        report, routed, expected = run(scenario())
        assert report.total_errors == 0
        assert report.total_sessions == 12  # 2 phases x 3 clients x 2
        # Affinity: frames only ever reached the ring owners of the two
        # schemes — nothing leaked onto other workers.
        assert set(routed) == expected
        assert sum(routed.values()) > 0


class TestWorkerLifecycle:
    def test_crash_restart_is_invisible_to_clients(self):
        """SIGKILL one of two workers mid-load: zero client-visible errors
        (retry/reconnect absorbs the blip) and the worker comes back."""

        async def scenario():
            async with _cluster() as cluster:
                host, port = cluster.address
                load = asyncio.ensure_future(
                    run_load(host, port, [("ceilidh-toy32", "key-agreement")],
                             clients=4, sessions_per_client=25)
                )
                await asyncio.sleep(0.3)
                await cluster.kill_worker(0)
                report = await load
                # Wait for the monitor to notice the death and for the
                # respawn (backoff + spawn + import) to report ready.
                for _ in range(200):
                    if (cluster.total_restarts >= 1
                            and cluster.worker_phases() == ["running", "running"]):
                        break
                    await asyncio.sleep(0.05)
                return report, cluster.total_restarts, cluster.worker_phases()

        report, restarts, phases = run(scenario())
        assert report.total_errors == 0
        assert report.total_sessions == 100
        assert restarts >= 1
        assert phases == ["running", "running"]

    def test_graceful_drain_loses_zero_inflight_requests(self):
        """SIGTERM one of two workers mid-load: its in-flight requests are
        answered and flushed; late arrivals get explicit refusals the
        client absorbs by reconnecting — zero errors either way."""

        async def scenario():
            async with _cluster() as cluster:
                host, port = cluster.address
                load = asyncio.ensure_future(
                    run_load(host, port, [("ceilidh-toy32", "key-agreement")],
                             clients=4, sessions_per_client=25)
                )
                await asyncio.sleep(0.3)
                pid = cluster.worker_pids()[1]
                assert pid is not None
                os.kill(pid, signal.SIGTERM)
                report = await load
                return report

        report = run(scenario())
        assert report.total_errors == 0
        assert report.total_sessions == 100

    def test_rolling_restart_keeps_the_port_serving(self):
        async def scenario():
            async with _cluster() as cluster:
                host, port = cluster.address
                before = list(cluster.worker_pids())
                load = asyncio.ensure_future(
                    run_load(host, port, [("ceilidh-toy32", "key-agreement")],
                             clients=4, sessions_per_client=30)
                )
                await asyncio.sleep(0.2)
                await cluster.rolling_restart()
                report = await load
                after = list(cluster.worker_pids())
                # The port answers after the restart too.
                async with ServeClient(host, port) as client:
                    await client.negotiate("ceilidh-toy32")
                    await client.key_agreement_session(random.Random(5))
                return report, before, after

        report, before, after = run(scenario())
        assert report.total_errors == 0
        assert report.total_sessions == 120
        # Every worker was actually replaced.
        assert set(before).isdisjoint(after)


class TestClusterLoadCLI:
    def test_cluster_sweep_emits_scaling_rows(self, tmp_path, monkeypatch, capsys):
        from repro.perf import load_bench
        from repro.serve.__main__ import main

        bench_file = tmp_path / "BENCH_cluster_test.json"
        monkeypatch.setenv("REPRO_BENCH_PATH", str(bench_file))
        monkeypatch.delenv("REPRO_FIELD_BACKEND", raising=False)
        status = main([
            "load", "--quick",
            "--cluster", "2",  # 1 is prepended as the efficiency reference
            "--schemes", "ceilidh-toy32",
            "--clients", "4",
        ])
        assert status == 0
        entries = load_bench(bench_file)
        assert set(entries) == {
            "serve-cluster:ceilidh-toy32:key-agreement@w1",
            "serve-cluster:ceilidh-toy32:key-agreement@w2",
        }
        single = entries["serve-cluster:ceilidh-toy32:key-agreement@w1"]
        doubled = entries["serve-cluster:ceilidh-toy32:key-agreement@w2"]
        assert single.meta["workers"] == 1
        assert single.meta["scaling_efficiency"] is None
        assert doubled.meta["workers"] == 2
        assert doubled.meta["cpu_count"] == os.cpu_count()
        assert doubled.meta["mode"] in ("reuseport", "router")
        assert doubled.meta["scaling_efficiency"] == pytest.approx(
            doubled.ops_per_second / (2 * single.ops_per_second)
        )

        # The perf CLI renders the dedicated scaling table for these rows.
        from repro.perf.__main__ import main as perf_main

        capsys.readouterr()
        assert perf_main(["show", str(bench_file)]) == 0
        shown = capsys.readouterr().out
        assert "Cluster scaling" in shown
        assert "efficiency" in shown

    def test_compare_skips_serve_prefixes(self, tmp_path):
        """The CI gate must never fail on serving rows: they are gated on
        correctness at measurement time, not on throughput afterwards."""
        import json

        from repro.perf.__main__ import main as perf_main

        def bench(path, ops):
            payload = {
                "schema": "repro-bench-v1",
                "generated_unix": 0,
                "entries": {
                    "serve-cluster:x:key-agreement@w2": {
                        "scheme": "serve-cluster:x",
                        "operation": "key-agreement@w2",
                        "sessions": 4,
                        "wall_seconds": 1.0,
                        "ops_per_second": ops,
                        "ms_per_op": 1.0,
                    }
                },
            }
            path.write_text(json.dumps(payload))

        current, baseline = tmp_path / "cur.json", tmp_path / "base.json"
        bench(current, 10.0)   # 10x slower than baseline
        bench(baseline, 100.0)
        assert perf_main(["compare", str(current), str(baseline)]) == 1
        assert perf_main([
            "compare", str(current), str(baseline),
            "--skip-prefix", "serve:", "--skip-prefix", "serve-cluster:",
        ]) == 0
