"""Property-based tests (hypothesis) for the core algebraic invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.fios import fios_multiply
from repro.montgomery.parallel import parallel_fios_multiply
from repro.nt.words import from_words, to_words
from repro.torus.compression import CompressedElement
from repro.torus.params import TOY_20, TOY_32
from repro.torus.t6 import T6Group

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

_P32 = TOY_32.p
_FIELD32 = PrimeField(_P32, check_prime=False)
_FP6 = make_fp6(_FIELD32)
_DOMAIN = MontgomeryDomain(_P32, word_bits=16)
_GROUP20 = T6Group(TOY_20)

fp_elements = st.integers(min_value=0, max_value=_P32 - 1)
fp6_elements = st.lists(fp_elements, min_size=6, max_size=6).map(_FP6)


class TestFieldProperties:
    @given(a=fp_elements, b=fp_elements, c=fp_elements)
    @_SETTINGS
    def test_fp_ring_axioms(self, a, b, c):
        f = _FIELD32
        assert f.add(a, b) == f.add(b, a)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
        assert f.add(a, f.neg(a)) == 0

    @given(a=fp_elements)
    @_SETTINGS
    def test_fp_inverse(self, a):
        if a == 0:
            return
        assert _FIELD32.mul(a, _FIELD32.inv(a)) == 1

    @given(a=fp6_elements, b=fp6_elements)
    @_SETTINGS
    def test_fp6_paper_multiplication_matches_schoolbook(self, a, b):
        assert _FP6.mul_paper(a, b) == _FP6.mul_schoolbook(a, b)

    @given(a=fp6_elements, b=fp6_elements, c=fp6_elements)
    @_SETTINGS
    def test_fp6_distributivity(self, a, b, c):
        assert _FP6.mul(a, _FP6.add(b, c)) == _FP6.add(_FP6.mul(a, b), _FP6.mul(a, c))

    @given(a=fp6_elements)
    @_SETTINGS
    def test_fp6_frobenius_is_additive_and_multiplicative(self, a):
        b = _FP6([1, 2, 3, 4, 5, 6])
        assert _FP6.frobenius(_FP6.add(a, b)) == _FP6.add(_FP6.frobenius(a), _FP6.frobenius(b))
        assert _FP6.frobenius(_FP6.mul(a, b)) == _FP6.mul(_FP6.frobenius(a), _FP6.frobenius(b))


class TestMontgomeryProperties:
    @given(x=fp_elements, y=fp_elements)
    @_SETTINGS
    def test_fios_matches_reference(self, x, y):
        xb, yb = _DOMAIN.to_montgomery(x), _DOMAIN.to_montgomery(y)
        assert _DOMAIN.from_montgomery(fios_multiply(_DOMAIN, xb, yb)) == x * y % _P32

    @given(x=fp_elements, y=fp_elements, cores=st.integers(min_value=1, max_value=6))
    @_SETTINGS
    def test_parallel_schedule_matches_reference(self, x, y, cores):
        xb, yb = _DOMAIN.to_montgomery(x), _DOMAIN.to_montgomery(y)
        assert parallel_fios_multiply(_DOMAIN, xb, yb, cores) == _DOMAIN.mont_mul(xb, yb)

    @given(value=st.integers(min_value=0, max_value=(1 << 96) - 1), word_bits=st.sampled_from([8, 16, 32]))
    @_SETTINGS
    def test_word_vector_roundtrip(self, value, word_bits):
        words = to_words(value, 96 // word_bits, word_bits)
        assert from_words(words, word_bits) == value


class TestTorusProperties:
    @given(exponent=st.integers(min_value=1, max_value=TOY_20.q - 1))
    @_SETTINGS
    def test_compression_roundtrip_on_subgroup(self, exponent):
        from repro.errors import CompressionError

        element = _GROUP20.generator() ** exponent
        try:
            compressed = _GROUP20.compressor.compress(element.value)
        except CompressionError:
            return  # exceptional set (density ~1/p)
        assert _GROUP20.compressor.decompress(compressed) == element.value

    @given(u=st.integers(min_value=0, max_value=TOY_20.p - 1),
           v=st.integers(min_value=0, max_value=TOY_20.p - 1))
    @_SETTINGS
    def test_decompression_lands_in_torus(self, u, v):
        from repro.errors import CompressionError

        try:
            element = _GROUP20.compressor.decompress(CompressedElement(u, v))
        except CompressionError:
            return
        assert _GROUP20.contains_raw(element)

    @given(x=st.integers(min_value=0, max_value=1 << 24), y=st.integers(min_value=0, max_value=1 << 24))
    @_SETTINGS
    def test_exponent_addition_homomorphism(self, x, y):
        g = _GROUP20.generator()
        assert (g ** x) * (g ** y) == g ** (x + y)

    @given(exponent=st.integers(min_value=0, max_value=1 << 24))
    @_SETTINGS
    def test_inverse_frobenius_identity(self, exponent):
        element = _GROUP20.generator() ** exponent
        assert element.inverse() == element.frobenius(3)
