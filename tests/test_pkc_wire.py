"""Wire-encoding round trips for every scheme's transmitted values.

encode → decode → encode must be the identity for public keys, ciphertexts
and signatures of every registered scheme, including the compressed-torus
and both SEC1 point paths.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    DecryptionError,
    NotOnCurveError,
    ParameterError,
    ReproError,
)
from repro.pkc import ENCRYPTION, KEY_AGREEMENT, SIGNATURE, get_scheme

WIRE_SCHEMES = ["ceilidh-toy32", "ceilidh-170", "xtr-toy32", "rsa-512", "ecdh-p160"]

MESSAGE = b"wire round trip payload"


@pytest.fixture
def rng():
    return random.Random(0x31DE)


@pytest.mark.parametrize("name", WIRE_SCHEMES)
class TestPublicKeyRoundTrip:
    def test_encode_decode_encode_is_identity(self, name, rng):
        scheme = get_scheme(name)
        keypair = scheme.keygen(rng)
        decoded = scheme.decode_public(keypair.public_wire)
        assert scheme.encode_public(decoded) == keypair.public_wire

    def test_truncated_public_rejected(self, name, rng):
        scheme = get_scheme(name)
        keypair = scheme.keygen(rng)
        with pytest.raises(ReproError):
            scheme.decode_public(keypair.public_wire[:-1])

    def test_empty_public_rejected(self, name, rng):
        scheme = get_scheme(name)
        with pytest.raises(ReproError):
            scheme.decode_public(b"")


@pytest.mark.parametrize("name", WIRE_SCHEMES)
class TestCiphertextAndSignatureWire:
    def test_ciphertext_parses_after_a_byte_level_round_trip(self, name, rng):
        scheme = get_scheme(name)
        if ENCRYPTION not in scheme.capabilities:
            pytest.skip(f"{name} has no encryption")
        keypair = scheme.keygen(rng)
        ciphertext = scheme.encrypt(keypair.public_wire, MESSAGE, rng)
        assert scheme.decrypt(keypair, bytes(bytearray(ciphertext))) == MESSAGE

    def test_header_shorter_than_minimum_rejected(self, name, rng):
        scheme = get_scheme(name)
        if ENCRYPTION not in scheme.capabilities:
            pytest.skip(f"{name} has no encryption")
        keypair = scheme.keygen(rng)
        with pytest.raises((ParameterError, DecryptionError)):
            scheme.decrypt(keypair, b"\x00\x01\x02")

    def test_signature_verifies_after_a_byte_level_round_trip(self, name, rng):
        scheme = get_scheme(name)
        if SIGNATURE not in scheme.capabilities:
            pytest.skip(f"{name} has no signatures")
        keypair = scheme.keygen(rng)
        signature = scheme.sign(keypair, MESSAGE, rng)
        assert scheme.verify(keypair.public_wire, MESSAGE, bytes(bytearray(signature)))
        assert not scheme.verify(keypair.public_wire, MESSAGE, signature + b"\x00")


class TestCompressedTorusPath:
    def test_compressed_element_coordinates_survive(self, rng):
        from repro.torus.encoding import decode_compressed

        scheme = get_scheme("ceilidh-toy32")
        keypair = scheme.keygen(rng)
        decoded = decode_compressed(scheme.params, keypair.public_wire)
        assert decoded == keypair.native.public
        assert 0 <= decoded.u < scheme.params.p
        assert 0 <= decoded.v < scheme.params.p

    def test_unreduced_coordinate_rejected(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        width = scheme.public_key_size() // 2
        bad = scheme.params.p.to_bytes(width, "big") + b"\x00" * width
        with pytest.raises(ParameterError):
            scheme.decode_public(bad)

    def _exceptional_pair(self, scheme) -> bytes:
        """A well-formed (u, v) wire pair on psi's exceptional set (c = 1)."""
        width = scheme.public_key_size() // 2
        return (scheme.params.p - 2).to_bytes(width, "big") + (5).to_bytes(width, "big")

    def test_exceptional_public_reports_false_on_verify(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        keypair = scheme.keygen(rng)
        signature = scheme.sign(keypair, MESSAGE, rng)
        assert scheme.verify(self._exceptional_pair(scheme), MESSAGE, signature) is False

    def test_exceptional_ephemeral_raises_decryption_error(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        keypair = scheme.keygen(rng)
        ciphertext = scheme.encrypt(keypair.public_wire, MESSAGE, rng)
        element = scheme.public_key_size()
        forged = self._exceptional_pair(scheme) + ciphertext[element:]
        with pytest.raises(DecryptionError):
            scheme.decrypt(keypair, forged)


class TestRsaPublicWire:
    def test_wrong_modulus_bit_length_rejected(self):
        scheme = get_scheme("rsa-512")
        with pytest.raises(ParameterError):
            scheme.decode_public(b"\x00" * scheme.public_key_size())

    def test_even_public_exponent_rejected(self, rng):
        scheme = get_scheme("rsa-512")
        keypair = scheme.keygen(rng)
        bad = keypair.public_wire[:-1] + b"\x00"  # e = 65536, even
        with pytest.raises(ParameterError):
            scheme.decode_public(bad)


class TestSec1PointPaths:
    @pytest.fixture
    def curve_and_point(self, rng):
        from repro.ecc.curves import SECP160R1
        from repro.ecc.ecdh import ecdh_generate

        return SECP160R1, ecdh_generate(SECP160R1, rng).public

    def test_uncompressed_round_trip(self, curve_and_point):
        from repro.ecc.encoding import decode_point, encode_point

        named, point = curve_and_point
        data = encode_point(point, compressed=False)
        assert data[0] == 0x04 and len(data) == 41
        assert encode_point(decode_point(named, data)) == data

    def test_compressed_round_trip_both_parities(self, curve_and_point):
        from repro.ecc.encoding import decode_point, encode_point

        named, point = curve_and_point
        for candidate in (point, -point):  # opposite Y parities
            data = encode_point(candidate, compressed=True)
            assert data[0] in (0x02, 0x03) and len(data) == 21
            decoded = decode_point(named, data)
            assert decoded.x == candidate.x and decoded.y == candidate.y

    def test_compression_halves_the_point_size(self):
        from repro.ecc.curves import SECP160R1
        from repro.ecc.encoding import point_size_bytes

        assert point_size_bytes(SECP160R1, compressed=True) == 21
        assert point_size_bytes(SECP160R1, compressed=False) == 41

    def test_non_residue_abscissa_rejected(self, curve_and_point):
        from repro.ecc.encoding import decode_point, encode_point

        named, point = curve_and_point
        data = bytearray(encode_point(point, compressed=True))
        for _ in range(64):
            data[-1] ^= 1  # perturb x until the RHS is a non-residue
            try:
                decode_point(named, bytes(data))
            except NotOnCurveError:
                return
            data[-1] += 2
        pytest.fail("never hit a non-residue abscissa")  # pragma: no cover

    def test_bad_prefix_and_infinity_rejected(self, curve_and_point):
        from repro.ecc.encoding import decode_point, encode_point
        from repro.ecc.point import INFINITY

        named, point = curve_and_point
        with pytest.raises(ParameterError):
            decode_point(named, b"\x05" + bytes(40))
        with pytest.raises(ParameterError):
            decode_point(named, b"")
        with pytest.raises(ParameterError):
            encode_point(INFINITY)

    def test_uncompressed_point_off_curve_rejected(self, curve_and_point):
        from repro.ecc.encoding import decode_point, encode_point

        named, point = curve_and_point
        data = bytearray(encode_point(point, compressed=False))
        data[-1] ^= 1
        with pytest.raises(NotOnCurveError):
            decode_point(named, bytes(data))

    def test_compressed_scheme_runs_the_whole_protocol(self, rng):
        """An EcdhScheme in compressed mode: 21-byte keys, same protocols."""
        from repro.ecc.curves import SECP160R1
        from repro.ecc.pkc import EcdhScheme

        scheme = EcdhScheme(SECP160R1, name="ecdh-p160-compressed", compressed=True)
        alice, bob = scheme.keygen(rng), scheme.keygen(rng)
        assert len(alice.public_wire) == 21
        assert scheme.key_agreement(alice, bob.public_wire) == scheme.key_agreement(
            bob, alice.public_wire
        )
        ciphertext = scheme.encrypt(bob.public_wire, MESSAGE, rng)
        assert scheme.decrypt(bob, ciphertext) == MESSAGE
        # Compressed ECIES header: 21-byte point + 16-byte tag.
        assert len(ciphertext) - len(MESSAGE) == 37


class TestXtrTraceWire:
    def test_trace_round_trip(self, rng):
        scheme = get_scheme("xtr-toy32")
        keypair = scheme.keygen(rng)
        assert scheme.decode_public(keypair.public_wire) == keypair.native.public

    def test_coefficient_exceeding_p_rejected(self):
        scheme = get_scheme("xtr-toy32")
        width = scheme.public_key_size() // 2
        bad = (scheme.params.p).to_bytes(width, "big") * 2
        with pytest.raises(ParameterError):
            scheme.decode_public(bad)
