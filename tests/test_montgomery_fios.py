"""Tests for the word-level FIOS algorithm (Algorithm 1 of the paper)."""

import pytest

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.fios import fios_multiply, fios_trace, fios_word_mult_count


@pytest.fixture(scope="module", params=[8, 16, 32])
def domain(request, toy64_params):
    return MontgomeryDomain(toy64_params.p, word_bits=request.param)


class TestFiosCorrectness:
    def test_matches_reference(self, domain, rng):
        p = domain.modulus
        for _ in range(25):
            x, y = rng.randrange(p), rng.randrange(p)
            xb, yb = domain.to_montgomery(x), domain.to_montgomery(y)
            assert fios_multiply(domain, xb, yb) == domain.mont_mul(xb, yb)

    def test_edge_operands(self, domain):
        p = domain.modulus
        assert fios_multiply(domain, 0, 5) == 0
        assert fios_multiply(domain, p - 1, p - 1) == domain.mont_mul(p - 1, p - 1)
        one = domain.one()
        assert domain.from_montgomery(fios_multiply(domain, one, one)) == 1

    def test_rejects_unreduced_operands(self, domain):
        with pytest.raises(ParameterError):
            fios_multiply(domain, domain.modulus, 1)

    def test_various_moduli(self, rng):
        for bits in (20, 61, 170):
            modulus = None
            from repro.nt.primegen import random_prime

            modulus = random_prime(bits, rng)
            domain = MontgomeryDomain(modulus, word_bits=16)
            x, y = rng.randrange(modulus), rng.randrange(modulus)
            xb, yb = domain.to_montgomery(x), domain.to_montgomery(y)
            assert domain.from_montgomery(fios_multiply(domain, xb, yb)) == x * y % modulus


class TestFiosTrace:
    def test_word_mult_count_closed_form(self, domain, rng):
        p = domain.modulus
        x, y = rng.randrange(p), rng.randrange(p)
        trace = fios_trace(domain, domain.to_montgomery(x), domain.to_montgomery(y))
        assert trace.word_mults == fios_word_mult_count(domain.num_words)
        assert trace.num_words == domain.num_words

    def test_scaling_is_quadratic(self):
        assert fios_word_mult_count(11) == 2 * 121 + 11
        assert fios_word_mult_count(64) == 2 * 4096 + 64
        # The 1024-bit / 170-bit work ratio underlying the paper's factor ~23.
        ratio = fios_word_mult_count(64) / fios_word_mult_count(11)
        assert 30 < ratio < 35

    def test_final_subtraction_flag_consistent(self, domain, rng):
        p = domain.modulus
        saw = {True: 0, False: 0}
        for _ in range(30):
            x, y = rng.randrange(p), rng.randrange(p)
            trace = fios_trace(domain, domain.to_montgomery(x), domain.to_montgomery(y))
            saw[trace.final_subtraction] += 1
        # Both branches occur over random operands.
        assert saw[False] > 0
