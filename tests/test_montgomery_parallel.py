"""Tests for the multi-core carry-local FIOS schedule (Fig. 5 / ref. [4])."""

import pytest

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.parallel import (
    ParallelFiosSchedule,
    estimate_parallel_cycles,
    parallel_fios_multiply,
    parallel_fios_report,
)


class TestScheduleConstruction:
    def test_blocks_cover_all_words(self):
        schedule = ParallelFiosSchedule.build(11, 4)
        covered = [w for core in range(schedule.num_cores) for w in schedule.words_of(core)]
        assert covered == list(range(11))

    def test_core0_gets_smallest_block(self):
        schedule = ParallelFiosSchedule.build(11, 4)
        sizes = [hi - lo + 1 for lo, hi in schedule.blocks]
        assert sizes[0] == min(sizes)

    def test_core_count_reduced_for_small_operands(self):
        assert ParallelFiosSchedule.build(4, 4).num_cores == 2
        assert ParallelFiosSchedule.build(2, 4).num_cores == 1
        assert ParallelFiosSchedule.build(3, 8).num_cores == 1

    def test_owner_lookup(self):
        schedule = ParallelFiosSchedule.build(8, 4)
        for core in range(schedule.num_cores):
            for word in schedule.words_of(core):
                assert schedule.owner_of(word) == core
        with pytest.raises(ParameterError):
            schedule.owner_of(99)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            ParallelFiosSchedule.build(0, 4)
        with pytest.raises(ParameterError):
            ParallelFiosSchedule.build(8, 0)


class TestParallelCorrectness:
    @pytest.mark.parametrize("cores", [1, 2, 3, 4, 8])
    def test_matches_reference_across_core_counts(self, cores, toy64_params, rng):
        domain = MontgomeryDomain(toy64_params.p, word_bits=16)
        p = domain.modulus
        for _ in range(10):
            xb, yb = rng.randrange(p), rng.randrange(p)
            assert parallel_fios_multiply(domain, xb, yb, cores) == domain.mont_mul(xb, yb)

    def test_170_bit(self, ceilidh170_params, rng):
        domain = MontgomeryDomain(ceilidh170_params.p, word_bits=16)
        p = domain.modulus
        for cores in (1, 4):
            xb, yb = rng.randrange(p), rng.randrange(p)
            assert parallel_fios_multiply(domain, xb, yb, cores) == domain.mont_mul(xb, yb)

    def test_small_word_size(self, toy32_params, rng):
        domain = MontgomeryDomain(toy32_params.p, word_bits=8)
        p = domain.modulus
        xb, yb = rng.randrange(p), rng.randrange(p)
        assert parallel_fios_multiply(domain, xb, yb, 4) == domain.mont_mul(xb, yb)

    def test_rejects_unreduced(self, toy64_params):
        domain = MontgomeryDomain(toy64_params.p, word_bits=16)
        with pytest.raises(ParameterError):
            parallel_fios_multiply(domain, domain.modulus, 1, 4)


class TestParallelReport:
    def test_transfers_match_figure5(self, toy64_params, rng):
        # s words on k cores: (k-1) boundary transfers per iteration, s iterations.
        domain = MontgomeryDomain(toy64_params.p, word_bits=16)
        p = domain.modulus
        report = parallel_fios_report(
            domain, rng.randrange(p), rng.randrange(p), num_cores=2
        )
        k = report.schedule.num_cores
        s = domain.num_words
        assert report.inter_core_transfers == (k - 1) * s

    def test_work_distribution(self, ceilidh170_params, rng):
        domain = MontgomeryDomain(ceilidh170_params.p, word_bits=16)
        p = domain.modulus
        report = parallel_fios_report(domain, rng.randrange(p), rng.randrange(p), num_cores=4)
        assert len(report.word_mults_per_core) == 4
        # Core 0 also derives m, so it performs extra word multiplications.
        assert report.word_mults_per_core[0] >= max(report.word_mults_per_core[1:]) - 2 * domain.num_words

    def test_cycle_estimate_improves_with_cores(self):
        single = estimate_parallel_cycles(16, 1)
        quad = estimate_parallel_cycles(16, 4)
        assert quad < single
        assert single / quad > 1.5
