"""Tests for the T6(Fp) group."""

import pytest

from repro.errors import NotInTorusError, ParameterError
from repro.torus.t6 import T6Group, TorusElement


class TestMembership:
    def test_identity_is_member(self, toy32_group):
        assert toy32_group.contains(toy32_group.identity())

    def test_random_elements_are_members(self, toy32_group, rng):
        for _ in range(5):
            assert toy32_group.contains(toy32_group.random_element(rng))

    def test_random_unit_is_not_member(self, toy32_group, rng):
        raw = toy32_group.fp6.random_nonzero(rng)
        # A random unit lies in the torus only with probability ~1/p^4.
        assert not toy32_group.contains_raw(raw)

    def test_element_wrapper_checks(self, toy32_group, rng):
        raw = toy32_group.fp6.random_nonzero(rng)
        with pytest.raises(NotInTorusError):
            toy32_group.element(raw, check=True)
        unchecked = toy32_group.element(raw, check=False)
        assert isinstance(unchecked, TorusElement)


class TestGroupStructure:
    def test_generator_has_order_q(self, toy32_group, toy32_params):
        g = toy32_group.generator()
        assert not g.is_identity()
        assert (g ** toy32_params.q).is_identity()

    def test_generator_order_is_exactly_q(self, toy20_group, toy20_params):
        # q is prime, so it suffices that g != 1 and g^q = 1.
        g = toy20_group.generator()
        assert (g ** toy20_params.q).is_identity()
        assert not g.is_identity()

    def test_generator_cached(self, toy32_group):
        assert toy32_group.generator() is toy32_group.generator()

    def test_torus_order_annihilates_every_element(self, toy32_group, rng):
        element = toy32_group.random_element(rng)
        assert (element ** toy32_group.order).is_identity()

    def test_group_operations(self, toy32_group, rng):
        a = toy32_group.random_element(rng)
        b = toy32_group.random_element(rng)
        c = toy32_group.random_element(rng)
        assert (a * b) * c == a * (b * c)
        assert a * toy32_group.identity() == a
        assert (a / a).is_identity()

    def test_frobenius_inverse_trick(self, toy32_group, rng):
        # On the torus, alpha^(p^3) is the inverse of alpha.
        a = toy32_group.random_element(rng)
        assert (a * a.inverse()).is_identity()
        assert a.inverse() == a.frobenius(3)

    def test_inverse_matches_field_inverse(self, toy32_group, rng):
        a = toy32_group.random_element(rng)
        field_inverse = toy32_group.fp6.inv(a.value)
        assert a.inverse().value == field_inverse

    def test_square(self, toy32_group, rng):
        a = toy32_group.random_element(rng)
        assert a.square() == a * a

    def test_exponentiation_homomorphism(self, toy32_group, rng):
        g = toy32_group.generator()
        x = rng.randrange(1, 1 << 30)
        y = rng.randrange(1, 1 << 30)
        assert (g ** x) * (g ** y) == g ** (x + y)

    def test_negative_exponent(self, toy32_group):
        g = toy32_group.generator()
        assert (g ** -5) * (g ** 5) == toy32_group.identity()

    def test_subgroup_element(self, toy32_group, toy32_params, rng):
        element = toy32_group.random_subgroup_element(rng)
        assert (element ** toy32_params.q).is_identity()

    def test_cross_group_operations_rejected(self, toy32_group, toy20_group):
        with pytest.raises(ParameterError):
            _ = toy32_group.generator() * toy20_group.generator()

    def test_coefficients_roundtrip(self, toy32_group, rng):
        a = toy32_group.random_element(rng)
        rebuilt = toy32_group.element(toy32_group.fp6(list(a.coefficients())), check=False)
        assert rebuilt == a

    def test_170_bit_generator(self, ceilidh170_group, ceilidh170_params):
        g = ceilidh170_group.generator()
        assert (g ** ceilidh170_params.q).is_identity()
        assert ceilidh170_group.contains(g)
