"""Tests for the single-core execution model."""

import pytest

from repro.errors import ExecutionError
from repro.soc.core import Core
from repro.soc.isa import addc, cla, ld, mac, sha, st, subb
from repro.soc.memory import DataRam


@pytest.fixture
def core():
    return Core(core_id=0, word_bits=16, num_registers=16)


@pytest.fixture
def ram():
    return DataRam(32, word_bits=16)


class TestLoadStore:
    def test_load(self, core, ram):
        ram.write(5, 0x1234)
        core.execute(ld(2, 5), ram)
        assert core.read_register(2) == 0x1234
        assert core.memory_accesses == 1

    def test_store(self, core, ram):
        core.write_register(3, 0xBEEF)
        core.execute(st(7, 3), ram)
        assert ram.read(7) == 0xBEEF

    def test_nop(self, core, ram):
        core.execute(None, ram)
        assert core.executed == 0


class TestMacAndShift:
    def test_mac_accumulates(self, core, ram):
        core.write_register(0, 1000)
        core.write_register(1, 2000)
        core.execute(mac(0, 1), ram)
        core.execute(mac(0, 1), ram)
        assert core.accumulator == 2 * 1000 * 2000
        assert core.mac_count == 2

    def test_sha_extracts_low_word_and_shifts(self, core, ram):
        core.write_register(0, 0xFFFF)
        core.write_register(1, 0xFFFF)
        core.execute(mac(0, 1), ram)  # 0xFFFE0001
        core.execute(sha(2), ram)
        core.execute(sha(3), ram)
        assert core.read_register(2) == 0x0001
        assert core.read_register(3) == 0xFFFE
        assert core.accumulator == 0

    def test_cla_clears(self, core, ram):
        core.write_register(0, 7)
        core.write_register(1, 9)
        core.execute(mac(0, 1), ram)
        core.execute(cla(), ram)
        assert core.accumulator == 0

    def test_accumulator_overflow_detected(self, core, ram):
        core.write_register(0, 0xFFFF)
        core.write_register(1, 0xFFFF)
        with pytest.raises(ExecutionError):
            for _ in range(2000):
                core.execute(mac(0, 1), ram)


class TestAddSub:
    def test_addc_without_carry_in(self, core, ram):
        core.write_register(0, 0xFFFF)
        core.write_register(1, 2)
        core.execute(addc(2, 0, 1), ram)
        assert core.read_register(2) == 1
        assert core.carry == 1

    def test_addc_chain(self, core, ram):
        # 0xFFFF + 1 with carry propagation into the next word.
        core.write_register(0, 0xFFFF)
        core.write_register(1, 1)
        core.write_register(2, 0)  # high word of first operand
        core.write_register(3, 0)
        core.execute(addc(4, 0, 1), ram)
        core.execute(addc(5, 2, 3, use_carry=True), ram)
        assert core.read_register(4) == 0
        assert core.read_register(5) == 1

    def test_subb_borrow(self, core, ram):
        core.write_register(0, 1)
        core.write_register(1, 2)
        core.execute(subb(2, 0, 1), ram)
        assert core.read_register(2) == 0xFFFF
        assert core.carry == 1

    def test_subb_chain(self, core, ram):
        # (0x0001_0000) - 1 = 0x0000_FFFF across two words.
        core.write_register(0, 0)  # low word of a
        core.write_register(1, 1)  # high word of a
        core.write_register(2, 1)  # low word of b
        core.write_register(3, 0)
        core.execute(subb(4, 0, 2), ram)
        core.execute(subb(5, 1, 3, use_carry=True), ram)
        assert core.read_register(4) == 0xFFFF
        assert core.read_register(5) == 0

    def test_register_width_enforced(self, core):
        with pytest.raises(ExecutionError):
            core.write_register(0, 1 << 16)

    def test_reset(self, core, ram):
        core.write_register(0, 5)
        core.execute(cla(), ram)
        core.reset()
        assert core.read_register(0) == 0
        assert core.executed == 0
