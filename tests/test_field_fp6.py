"""Tests for the Fp6 (F1 representation) field and the 18M multiplication."""

import pytest

from repro.errors import ParameterError
from repro.field.fp import PrimeField
from repro.field.fp6 import Fp6Field, make_fp6, split_halves
from repro.field.fp2 import make_fp2
from repro.field.fp3 import make_fp3
from repro.field.opcount import CountingPrimeField


class TestConstruction:
    def test_requires_p_2_or_5_mod_9(self):
        # 19 = 1 mod 9: z^6+z^3+1 splits.
        with pytest.raises(ParameterError):
            make_fp6(PrimeField(19))

    def test_accepts_admissible_primes(self, toy32_params):
        fp6 = make_fp6(PrimeField(toy32_params.p))
        assert fp6.degree == 6

    def test_fp2_requires_2_mod_3(self):
        with pytest.raises(ParameterError):
            make_fp2(PrimeField(13))  # 13 = 1 mod 3
        assert make_fp2(PrimeField(11)).degree == 2

    def test_fp3_requires_not_pm1_mod_9(self):
        with pytest.raises(ParameterError):
            make_fp3(PrimeField(17))  # 17 = 8 = -1 mod 9
        assert make_fp3(PrimeField(11)).degree == 3  # 11 = 2 mod 9


class TestPaperMultiplication:
    def test_matches_schoolbook(self, toy32_fp6, rng):
        for _ in range(20):
            a = toy32_fp6.random_element(rng)
            b = toy32_fp6.random_element(rng)
            assert toy32_fp6.mul_paper(a, b) == toy32_fp6.mul_schoolbook(a, b)

    def test_uses_exactly_18_base_multiplications(self, toy32_params, rng):
        field = CountingPrimeField(toy32_params.p)
        fp6 = make_fp6(field)
        a, b = fp6.random_element(rng), fp6.random_element(rng)
        field.reset_counts()
        fp6.mul_paper(a, b)
        assert field.counts.mul == 18
        # The paper quotes ~60 additions; the reproduction's exact schedule
        # uses a few more (see EXPERIMENTS.md) but stays in the same range.
        assert 55 <= field.counts.additions_total <= 75

    def test_squaring_consistent(self, toy32_fp6, rng):
        a = toy32_fp6.random_element(rng)
        assert toy32_fp6.sqr(a) == toy32_fp6.mul_schoolbook(a, a)

    def test_identity_and_zero(self, toy32_fp6, rng):
        a = toy32_fp6.random_element(rng)
        assert toy32_fp6.mul(a, toy32_fp6.one()) == a
        assert toy32_fp6.mul(a, toy32_fp6.zero()).is_zero()

    def test_split_halves(self, toy32_fp6):
        a = toy32_fp6([1, 2, 3, 4, 5, 6])
        lo, hi = split_halves(a)
        assert lo == (1, 2, 3) and hi == (4, 5, 6)

    def test_modulus_relation(self, toy32_fp6):
        # z^6 + z^3 + 1 = 0 for the generator z.
        z = toy32_fp6.generator()
        lhs = toy32_fp6.add(
            toy32_fp6.add(toy32_fp6.pow(z, 6), toy32_fp6.pow(z, 3)), toy32_fp6.one()
        )
        assert lhs.is_zero()

    def test_z_is_ninth_root_of_unity(self, toy32_fp6):
        z = toy32_fp6.generator()
        assert toy32_fp6.pow(z, 9).is_one()
        assert not toy32_fp6.pow(z, 3).is_one()


class TestCyclotomicStructure:
    def test_orders(self, toy32_fp6, toy32_params):
        p = toy32_params.p
        assert toy32_fp6.unit_group_order() == p ** 6 - 1
        assert toy32_fp6.torus_order() == p * p - p + 1
        assert toy32_fp6.cofactor_exponent() * toy32_fp6.torus_order() == p ** 6 - 1

    def test_projection_lands_in_torus(self, toy32_fp6, rng):
        for _ in range(5):
            a = toy32_fp6.random_nonzero(rng)
            t = toy32_fp6.project_to_torus(a)
            assert toy32_fp6.is_in_torus(t)

    def test_random_element_usually_not_in_torus(self, toy32_fp6, rng):
        # The torus has index ~p^4 in the unit group; random elements are
        # essentially never members.
        hits = sum(
            toy32_fp6.is_in_torus(toy32_fp6.random_nonzero(rng)) for _ in range(10)
        )
        assert hits == 0

    def test_zero_not_in_torus(self, toy32_fp6):
        assert not toy32_fp6.is_in_torus(toy32_fp6.zero())
        with pytest.raises(ParameterError):
            toy32_fp6.project_to_torus(toy32_fp6.zero())

    def test_frobenius_is_field_automorphism(self, toy32_fp6, rng):
        a, b = toy32_fp6.random_element(rng), toy32_fp6.random_element(rng)
        lhs = toy32_fp6.frobenius(toy32_fp6.mul(a, b), 1)
        rhs = toy32_fp6.mul(toy32_fp6.frobenius(a, 1), toy32_fp6.frobenius(b, 1))
        assert lhs == rhs

    def test_frobenius_power_matches_exponentiation(self, toy32_fp6, toy32_params, rng):
        a = toy32_fp6.random_element(rng)
        assert toy32_fp6.frobenius(a, 2) == toy32_fp6.pow(a, toy32_params.p ** 2)
