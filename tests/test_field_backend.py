"""Tests for the pluggable field-arithmetic backend layer.

Covers the representation contract of :mod:`repro.field.backend` (enter /
exit / resident arithmetic), resident-Montgomery parity through the whole
extension tower, the word-counting substrate and its FIOS statistics, the
cross-backend differential guarantee for every registry scheme, and the
measured-vs-analytic Table 3 projection agreement.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import FieldMismatchError, ParameterError
from repro.field import (
    CountingPrimeField,
    MontgomeryBackend,
    PlainBackend,
    PrimeField,
    WordCountingBackend,
    get_backend,
    make_fp2,
    make_fp6,
)
from repro.field.backend import default_backend_name
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.fios import fios_batch_stats, fios_word_mult_count
from repro.pkc import get_scheme, measured_headline_projection
from repro.pkc.base import ENCRYPTION, KEY_AGREEMENT, SIGNATURE
from repro.pkc.registry import available_schemes

P32 = 2494740737  # toy-32 CEILIDH prime (p = 2 mod 9)


# ---------------------------------------------------------------------------
# Backend unit semantics.
# ---------------------------------------------------------------------------


class TestBackendContract:
    def test_get_backend_resolution(self):
        assert get_backend(None).name == "plain"
        assert get_backend("montgomery").name == "montgomery"
        spec = WordCountingBackend()
        assert get_backend(spec) is spec
        with pytest.raises(ParameterError):
            get_backend("nonsense")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIELD_BACKEND", raising=False)
        assert default_backend_name() == "plain"
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "montgomery")
        assert default_backend_name() == "montgomery"
        assert default_backend_name("plain") == "plain"  # override wins

    def test_enter_exit_roundtrip(self):
        field = PrimeField(P32, check_prime=False, backend="montgomery")
        for value in (0, 1, 2, P32 - 1, 12345678):
            assert field.exit(field.enter(value)) == value

    def test_one_value_is_resident_one(self):
        plain = PrimeField(P32, check_prime=False)
        mont = PrimeField(P32, check_prime=False, backend="montgomery")
        assert plain.one_value == 1
        assert mont.exit(mont.one_value) == 1
        assert mont.one_value == MontgomeryDomain(P32).r_mod_p

    def test_resident_arithmetic_matches_plain(self):
        plain = PrimeField(P32, check_prime=False)
        mont = PrimeField(P32, check_prime=False, backend="montgomery")
        rng = random.Random(5)
        for _ in range(50):
            a, b = rng.randrange(P32), rng.randrange(1, P32)
            ra, rb = mont.enter(a), mont.enter(b)
            assert mont.exit(mont.add(ra, rb)) == plain.add(a, b)
            assert mont.exit(mont.sub(ra, rb)) == plain.sub(a, b)
            assert mont.exit(mont.neg(ra)) == plain.neg(a)
            assert mont.exit(mont.mul(ra, rb)) == plain.mul(a, b)
            assert mont.exit(mont.sqr(ra)) == plain.sqr(a)
            assert mont.exit(mont.inv(rb)) == plain.inv(b)
            assert mont.exit(mont.half(ra)) == plain.half(a)

    def test_resident_pow(self):
        mont = PrimeField(P32, check_prime=False, backend="montgomery")
        base = mont.enter(987654321)
        assert mont.exit(mont.pow(base, 1000003)) == pow(987654321, 1000003, P32)
        assert mont.exit(mont.pow(base, -7)) == pow(987654321, -7, P32)

    def test_sqrt_and_is_square_resident(self):
        mont = PrimeField(P32, check_prime=False, backend="montgomery")
        value = mont.enter(1234)
        square = mont.sqr(value)
        assert mont.is_square(square)
        root = mont.sqrt(square)
        assert mont.sqr(root) == square

    def test_element_wrapper_exits_at_int(self):
        mont = PrimeField(P32, check_prime=False, backend="montgomery")
        element = mont(42)
        assert int(element) == 42
        assert element == 42
        assert int(mont(6) * mont(7)) == 42

    def test_fields_of_different_representation_are_distinct(self):
        plain = PrimeField(P32, check_prime=False)
        mont = PrimeField(P32, check_prime=False, backend="montgomery")
        assert plain != mont
        with pytest.raises(FieldMismatchError):
            plain(1) + mont(1)

    def test_montgomery_fields_with_different_r_are_distinct(self):
        # Different word geometry means different R — residents of one
        # domain are meaningless in the other, so the fields must not
        # compare equal (which would let their elements mix silently).
        # 12-bit words need 3 words for a 32-bit p (R = 2^36) vs 2 sixteen-bit
        # words (R = 2^32) — genuinely different residents.
        narrow = PrimeField(P32, check_prime=False, backend=MontgomeryBackend(word_bits=12))
        wide = PrimeField(P32, check_prime=False, backend=MontgomeryBackend(word_bits=16))
        assert narrow.backend.domain.r != wide.backend.domain.r
        assert narrow != wide
        with pytest.raises(FieldMismatchError):
            narrow(5) * wide(7)
        # Same geometry stays equal and interoperable.
        twin = PrimeField(P32, check_prime=False, backend="montgomery")
        assert twin == wide
        assert int(twin(5) * wide(7)) == 35

    def test_counting_field_requires_plain_backend(self):
        with pytest.raises(ParameterError):
            CountingPrimeField(P32, check_prime=False, backend="montgomery")

    def test_montgomery_backend_needs_odd_modulus(self):
        with pytest.raises(ParameterError):
            PrimeField(2, check_prime=False, backend="montgomery")


# ---------------------------------------------------------------------------
# Residency through the tower.
# ---------------------------------------------------------------------------


class TestTowerResidency:
    def test_fp6_multiplication_matches_plain(self):
        plain6 = make_fp6(PrimeField(P32, check_prime=False))
        mont6 = make_fp6(PrimeField(P32, check_prime=False, backend="montgomery"))
        rng1, rng2 = random.Random(11), random.Random(11)
        for _ in range(10):
            a1 = plain6.random_element(rng1)
            b1 = plain6.random_element(rng1)
            a2 = mont6.random_element(rng2)
            b2 = mont6.random_element(rng2)
            product_plain = plain6.mul(a1, b1)
            product_mont = mont6.mul(a2, b2)
            exit_ = mont6.base.exit
            assert tuple(exit_(c) for c in product_mont.coeffs) == product_plain.coeffs
            inverse = mont6.inv(a2)
            assert mont6.mul(a2, inverse).is_one()

    def test_fp2_karatsuba_matches_schoolbook(self):
        for backend in ("plain", "montgomery"):
            fp2 = make_fp2(PrimeField(P32, check_prime=False, backend=backend))
            rng = random.Random(13)
            for _ in range(20):
                a = fp2.random_element(rng)
                b = fp2.random_element(rng)
                assert fp2.mul(a, b) == fp2.mul_schoolbook(a, b)

    def test_j_invariant_plain_across_backends(self):
        from repro.ecc.curves import SECP160R1

        plain_curve, _ = SECP160R1.build()
        mont_curve, _ = SECP160R1.build(backend="montgomery")
        assert plain_curve.j_invariant() == mont_curve.j_invariant()

    def test_frobenius_and_norm_resident(self):
        mont6 = make_fp6(PrimeField(P32, check_prime=False, backend="montgomery"))
        plain6 = make_fp6(PrimeField(P32, check_prime=False))
        element_m = mont6([1, 2, 3, 4, 5, 6])
        element_p = plain6([1, 2, 3, 4, 5, 6])
        assert mont6.norm(element_m) == plain6.norm(element_p)  # both plain ints
        assert mont6.trace(element_m) == plain6.trace(element_p)
        frob_m = mont6.frobenius(element_m, 2)
        frob_p = plain6.frobenius(element_p, 2)
        assert tuple(mont6.base.exit(c) for c in frob_m.coeffs) == frob_p.coeffs


# ---------------------------------------------------------------------------
# Word-counting substrate.
# ---------------------------------------------------------------------------


class TestWordCounting:
    def test_stream_tallies_fios_word_mults(self):
        spec = WordCountingBackend()
        field = PrimeField(P32, check_prime=False, backend=spec)
        words = MontgomeryDomain(P32).num_words
        a, b = field.enter(123456), field.enter(654321)
        spec.stream.reset()
        field.mul(a, b)
        field.sqr(a)
        assert spec.stream.modular_mults == 2
        assert spec.stream.word_mults == 2 * fios_word_mult_count(words)
        field.add(a, b)
        field.sub(a, b)
        assert spec.stream.modular_adds == 1
        assert spec.stream.modular_subs == 1
        assert spec.stream.word_adds > 0

    def test_counting_toggle_preserves_values(self):
        spec = WordCountingBackend()
        field = PrimeField(P32, check_prime=False, backend=spec)
        a, b = field.enter(13579), field.enter(24680)
        counted = field.mul(a, b)
        spec.stream.counting = False
        fast = field.mul(a, b)
        spec.stream.counting = True
        assert counted == fast
        spec.stream.reset()
        spec.stream.counting = False
        field.mul(a, b)
        assert spec.stream.modular_mults == 0  # gated off

    def test_shared_stream_across_tower(self):
        spec = WordCountingBackend()
        fp6 = make_fp6(PrimeField(P32, check_prime=False, backend=spec))
        a = fp6([1, 2, 3, 4, 5, 6])
        b = fp6([6, 5, 4, 3, 2, 1])
        spec.stream.reset()
        fp6.mul(a, b)
        # The paper's 18M algorithm: exactly 18 base-field multiplications.
        assert spec.stream.modular_mults == 18
        # ... and the A-count of the level-2 sequence (64 adds/subs).
        assert spec.stream.modular_adds + spec.stream.modular_subs == 64

    def test_rsa_counting_domain_streams(self):
        scheme = get_scheme("rsa-512", fresh=True, backend="word-counting")
        from repro.exp.trace import OpTrace

        stream = scheme.field_backend.stream
        stream.reset()
        trace = OpTrace()
        scheme.headline_exponentiation(trace)
        assert stream.modular_mults == trace.total
        assert stream.final_subtractions <= stream.modular_mults

    def test_rsa_word_counting_covers_all_protocol_legs(self):
        scheme = get_scheme("rsa-512", fresh=True, backend="word-counting")
        stream = scheme.field_backend.stream
        key = scheme.keygen(random.Random(31))
        stream.reset()
        ciphertext = scheme.encrypt(key.public_wire, b"stream me" * 2, random.Random(32))
        after_encrypt = stream.modular_mults
        assert after_encrypt > 0
        assert scheme.decrypt(key, ciphertext) == b"stream me" * 2
        after_decrypt = stream.modular_mults
        assert after_decrypt > after_encrypt  # CRT legs streamed too
        signature = scheme.sign(key, b"message", random.Random(33))
        after_sign = stream.modular_mults
        assert after_sign > after_decrypt
        assert scheme.verify(key.public_wire, b"message", signature)
        assert stream.modular_mults > after_sign

    def test_manual_batch_stats_expected_rate_unknown(self):
        from repro.montgomery.fios import FiosBatchStats, fios_trace

        domain = MontgomeryDomain(P32)
        stats = FiosBatchStats()
        stats.record(fios_trace(domain, 123456, 654321))
        assert stats.multiplications == 1
        assert stats.expected_rate is None  # domain geometry never supplied

    def test_fios_batch_stats(self):
        domain = MontgomeryDomain(P32)
        rng = random.Random(17)
        pairs = [
            (rng.randrange(P32), rng.randrange(P32)) for _ in range(400)
        ]
        stats = fios_batch_stats(domain, pairs)
        assert stats.multiplications == 400
        assert stats.word_mults == 400 * fios_word_mult_count(domain.num_words)
        # The conditional final subtraction fires for *some but not all*
        # products — the data dependence behind the constant-time caveat.
        assert 0 < stats.final_subtractions < 400
        assert 0.0 < stats.rate < 1.0
        assert stats.expected_rate > 0
        # Loose sanity band around the uniform-operand prediction p/4R.
        assert stats.rate < 8 * stats.expected_rate


# ---------------------------------------------------------------------------
# Cross-backend differential: byte-identical wire output per scheme.
# ---------------------------------------------------------------------------


class TestCrossBackendDifferential:
    @pytest.mark.parametrize("name", available_schemes())
    def test_wire_output_identical_plain_vs_montgomery(self, name):
        plain = get_scheme(name, fresh=True, backend="plain")
        mont = get_scheme(name, fresh=True, backend="montgomery")
        rng_p, rng_m = random.Random(4242), random.Random(4242)
        key_p, key_m = plain.keygen(rng_p), mont.keygen(rng_m)
        assert key_p.public_wire == key_m.public_wire
        if KEY_AGREEMENT in plain.capabilities:
            peer_p, peer_m = plain.keygen(rng_p), mont.keygen(rng_m)
            assert peer_p.public_wire == peer_m.public_wire
            secret_p = plain.key_agreement(key_p, peer_p.public_wire)
            secret_m = mont.key_agreement(key_m, peer_m.public_wire)
            assert secret_p == secret_m
            # ... and the montgomery scheme interoperates with itself.
            assert mont.key_agreement(peer_m, key_m.public_wire) == secret_m
        if ENCRYPTION in plain.capabilities:
            message = b"backend differential message"
            ct_p = plain.encrypt(key_p.public_wire, message, rng_p)
            ct_m = mont.encrypt(key_m.public_wire, message, rng_m)
            assert ct_p == ct_m
            assert mont.decrypt(key_m, ct_m) == message
        if SIGNATURE in plain.capabilities:
            message = b"backend differential signature"
            sig_p = plain.sign(key_p, message, rng_p)
            sig_m = mont.sign(key_m, message, rng_m)
            assert sig_p == sig_m
            assert mont.verify(key_m.public_wire, message, sig_m)
            assert plain.verify(key_p.public_wire, message, sig_m)


# ---------------------------------------------------------------------------
# Measured vs analytic Table 3 projection.
# ---------------------------------------------------------------------------


class TestMeasuredProjection:
    #: Fast parameterisations of all four scheme shapes (the full headline
    #: sizes run in the benchmark-smoke job).
    FAST_SCHEMES = ("ceilidh-toy32", "ecdh-p160", "rsa-512", "xtr-toy32")

    @pytest.mark.parametrize("name", FAST_SCHEMES)
    def test_measured_agrees_with_analytic_within_5_percent(self, name, platform_cls=None):
        projection = measured_headline_projection(name)
        assert projection.measured_cycles > 0
        assert projection.relative_error <= 0.05, (
            f"{name}: measured {projection.measured_cycles} vs analytic "
            f"{projection.analytic_cycles}"
        )
        # The stream really executed word-level work.
        assert projection.stream["word_mults"] > 0
        assert projection.stream["modular_mults"] > 0

    def test_measured_projection_restores_stream_counting(self):
        measured_headline_projection("ceilidh-toy32")
        scheme = get_scheme("ceilidh-toy32", backend="word-counting")
        # The cached instance's shared stream must keep tallying afterwards.
        assert scheme.field_backend.stream.counting is True

    def test_measured_projection_preserves_caller_tallies(self):
        scheme = get_scheme("ceilidh-toy32", backend="word-counting")
        stream = scheme.field_backend.stream
        stream.reset()
        scheme.keygen(random.Random(21))  # caller's in-progress accumulation
        before = stream.as_dict()
        assert before["modular_mults"] > 0
        measured_headline_projection(scheme)  # instance form, same stream
        assert stream.as_dict() == before

    def test_measured_projection_rejects_non_counting_instance(self):
        plain_scheme = get_scheme("ceilidh-toy32", backend="plain")
        with pytest.raises(ParameterError):
            measured_headline_projection(plain_scheme)

    def test_build_profile_measured_mode(self):
        scheme = get_scheme("ceilidh-toy32")
        from repro.pkc import build_profile

        profile = build_profile(scheme, include_protocols=False, projection="measured")
        assert profile.measured_cycles is not None
        assert profile.word_stream is not None
        assert profile.measured_vs_analytic_error is not None
        assert profile.measured_vs_analytic_error <= 0.05

    def test_unknown_projection_mode_rejected(self):
        scheme = get_scheme("ceilidh-toy32")
        from repro.pkc import build_profile

        with pytest.raises(ParameterError):
            build_profile(scheme, include_protocols=False, projection="mystic")


# ---------------------------------------------------------------------------
# Registry backend plumbing.
# ---------------------------------------------------------------------------


class TestRegistryBackends:
    def test_instances_cached_per_backend(self, monkeypatch):
        # Pin the env so the test means the same thing on every CI leg.
        monkeypatch.delenv("REPRO_FIELD_BACKEND", raising=False)
        plain_a = get_scheme("ceilidh-toy32")
        plain_b = get_scheme("ceilidh-toy32", backend="plain")
        mont = get_scheme("ceilidh-toy32", backend="montgomery")
        assert plain_a is plain_b
        assert mont is not plain_a
        assert mont is get_scheme("ceilidh-toy32", backend="montgomery")

    def test_env_var_steers_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "montgomery")
        scheme = get_scheme("ceilidh-toy32", fresh=True)
        assert scheme.field_backend.name == "montgomery"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            get_scheme("ceilidh-toy32", backend="abacus")

    def test_run_batch_accepts_scheme_name_and_backend(self):
        from repro.pkc.bench import run_batch

        result = run_batch(
            "ceilidh-toy32", "key-agreement", 2,
            rng=random.Random(3), backend="montgomery",
        )
        assert result.sessions == 2
        assert result.ops.total > 0

    def test_run_batch_rejects_conflicting_backend(self):
        from repro.pkc.bench import run_batch

        scheme = get_scheme("ceilidh-toy32", backend="plain")
        with pytest.raises(ParameterError):
            run_batch(scheme, "key-agreement", 1, backend="montgomery")

    def test_run_batch_rejects_backend_for_backend_unaware_scheme(self):
        from repro.pkc.base import KEY_AGREEMENT, PkcScheme
        from repro.pkc.bench import run_batch

        class Legacy(PkcScheme):
            name = "legacy"
            capabilities = frozenset({KEY_AGREEMENT})

        with pytest.raises(ParameterError):
            run_batch(Legacy(), "key-agreement", 1, backend="montgomery")

    def test_run_batch_accepts_plain_backend_for_legacy_scheme(self):
        # A scheme that never set field_backend runs plain arithmetic, so
        # asking for the plain backend is consistent (it then fails only on
        # the unimplemented keygen, not on the backend check).
        from repro.pkc.base import KEY_AGREEMENT, PkcScheme
        from repro.pkc.bench import run_batch

        class Legacy(PkcScheme):
            name = "legacy"
            capabilities = frozenset({KEY_AGREEMENT})

        with pytest.raises(NotImplementedError):
            run_batch(Legacy(), "key-agreement", 1, backend="plain")

    def test_parallel_batch_carries_instance_backend(self):
        from repro.pkc.bench import run_batch

        scheme = get_scheme("ceilidh-toy32", backend="montgomery")
        result = run_batch(
            scheme, "key-agreement", 2, rng=random.Random(9), workers=2
        )
        assert result.sessions == 2
        assert result.ops.total > 0


# ---------------------------------------------------------------------------
# Batch inversion (Montgomery's trick) across backends.
# ---------------------------------------------------------------------------


class TestInvMany:
    P = 2**89 - 1  # a Mersenne prime comfortably above the toy sizes

    @pytest.mark.parametrize("backend", ["plain", "montgomery", "native"])
    def test_matches_singles(self, backend):
        from repro.field.fp import PrimeField

        field = PrimeField(self.P, backend=backend)
        rng = random.Random(7)
        values = [field.enter(rng.randrange(1, self.P)) for _ in range(17)]
        batch = [field.exit(x) for x in field.inv_many(values)]
        singles = [field.exit(field.inv(v)) for v in values]
        assert batch == singles
        assert batch == [pow(field.exit(v), -1, self.P) for v in values]

    @pytest.mark.parametrize("backend", ["plain", "montgomery", "native"])
    def test_empty_and_single(self, backend):
        from repro.field.fp import PrimeField

        field = PrimeField(self.P, backend=backend)
        assert field.inv_many([]) == []
        value = field.enter(424242)
        assert [field.exit(x) for x in field.inv_many([value])] == [
            field.exit(field.inv(value))
        ]

    @pytest.mark.parametrize("backend", ["plain", "montgomery", "native"])
    def test_zero_anywhere_raises(self, backend):
        from repro.errors import NotInvertibleError
        from repro.field.fp import PrimeField

        field = PrimeField(self.P, backend=backend)
        values = [field.enter(3), field.enter(0), field.enter(5)]
        with pytest.raises(NotInvertibleError):
            field.inv_many(values)

    def test_montgomery_residents_round_trip(self):
        # The trick runs entirely on residents: entering, batch-inverting
        # and exiting under the Montgomery backend must agree with plain
        # integer inversion value for value.
        from repro.field.fp import PrimeField

        field = PrimeField(self.P, backend="montgomery")
        plain = [1, 2, 3, self.P - 1, 12345, 2**64 + 7]
        residents = [field.enter(v) for v in plain]
        out = [field.exit(x) for x in field.inv_many(residents)]
        assert out == [pow(v, -1, self.P) for v in plain]
        # ...and the residents themselves were Montgomery-form all along.
        assert residents != plain

    def test_counting_field_observes_claimed_cost(self):
        # 1 inversion + 3(N-1) multiplications, by construction.
        from repro.field.opcount import CountingPrimeField

        field = CountingPrimeField(self.P, check_prime=False)
        rng = random.Random(11)
        values = [rng.randrange(1, self.P) for _ in range(9)]
        field.reset_counts()
        field.inv_many(values)
        assert field.counts.inv == 1
        assert field.counts.mul == 3 * (len(values) - 1)

    def test_tower_inv_many_matches_singles(self):
        # One poly-gcd inversion for N Fp6-tower inversions.
        from repro.field.fp import PrimeField
        from repro.field.towers import TowerElement, TowerFp6

        field = PrimeField(1013, check_prime=False)  # p = 2 (mod 3)
        tower = TowerFp6(field)
        rng = random.Random(13)

        def random_element():
            while True:
                coeffs = [[field.enter(rng.randrange(1013)) for _ in range(3)]
                          for _ in range(2)]
                element = TowerElement(
                    tower,
                    tower.fp3._from_coeffs(coeffs[0]),
                    tower.fp3._from_coeffs(coeffs[1]),
                )
                if not element.is_zero():
                    return element

        values = [random_element() for _ in range(8)]
        batch = tower.inv_many(values)
        for value, inverse in zip(values, batch):
            assert tower.mul(value, inverse) == tower.one()


# ---------------------------------------------------------------------------
# Native backend: substrate resolution, degradation, differentials.
# ---------------------------------------------------------------------------


class TestNativeBackend:
    def test_substrate_report_is_consistent(self):
        from repro.field.backend import NativeBackend
        from repro.field.native import native_substrate_name

        backend = NativeBackend()
        assert backend.substrate in (None, "gmpy2", "fios-c")
        assert backend.substrate == native_substrate_name()

    def test_resident_arithmetic_matches_plain(self):
        from repro.field.fp import PrimeField

        p = 2**127 - 1
        plain, native = PrimeField(p), PrimeField(p, backend="native")
        rng = random.Random(17)
        for _ in range(25):
            a, b = rng.randrange(1, p), rng.randrange(1, p)
            e = rng.randrange(1, p)
            assert native.exit(native.mul(native.enter(a), native.enter(b))) == plain.mul(a, b)
            assert native.exit(native.inv(native.enter(a))) == plain.inv(a)
            assert native.exit(native.pow(native.enter(a), e)) == pow(a, e, p)
            assert native.exit(native.pow(native.enter(a), -e)) == pow(a, -e, p)

    def test_degrades_to_plain_with_one_warning(self, monkeypatch, caplog):
        import logging

        from repro.field import backend as backend_mod
        from repro.field.backend import NativeBackend, PlainFieldOps
        from repro.field import native as native_mod

        monkeypatch.setattr(native_mod, "resolve_substrate", lambda: (None, None))
        monkeypatch.setattr(NativeBackend, "_warned", False)
        with caplog.at_level(logging.WARNING, logger="repro.field.native"):
            degraded = NativeBackend()
            NativeBackend()  # second construction must not warn again
        assert degraded.substrate is None
        assert type(degraded.bind(97)) is PlainFieldOps
        warnings = [r for r in caplog.records if "degrading" in r.message]
        assert len(warnings) == 1

    def test_degraded_native_shares_registry_cache_with_plain(self, monkeypatch):
        from repro.field import native as native_mod
        from repro.field.backend import canonical_backend_name

        monkeypatch.setattr(native_mod, "native_substrate_name", lambda: None)
        assert canonical_backend_name("native") == "plain"
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "native")
        via_env = get_scheme("ceilidh-toy32")
        explicit_plain = get_scheme("ceilidh-toy32", backend="plain")
        assert via_env is explicit_plain

    def test_live_native_gets_its_own_cache_slot(self):
        from repro.field.backend import canonical_backend_name
        from repro.field.native import native_substrate_name

        if native_substrate_name() is None:
            pytest.skip("no native substrate available")
        assert canonical_backend_name("native") == "native"
        native = get_scheme("ceilidh-toy32", backend="native")
        plain = get_scheme("ceilidh-toy32", backend="plain")
        assert native is not plain
        assert native is get_scheme("ceilidh-toy32", backend="native")

    @pytest.mark.parametrize("name", available_schemes())
    def test_wire_output_identical_plain_vs_native(self, name):
        plain = get_scheme(name, fresh=True, backend="plain")
        native = get_scheme(name, fresh=True, backend="native")
        rng_p, rng_n = random.Random(9393), random.Random(9393)
        key_p, key_n = plain.keygen(rng_p), native.keygen(rng_n)
        assert key_p.public_wire == key_n.public_wire
        if KEY_AGREEMENT in plain.capabilities:
            peer_p, peer_n = plain.keygen(rng_p), native.keygen(rng_n)
            assert peer_p.public_wire == peer_n.public_wire
            secret_p = plain.key_agreement(key_p, peer_p.public_wire)
            secret_n = native.key_agreement(key_n, peer_n.public_wire)
            assert secret_p == secret_n
            assert native.key_agreement(peer_n, key_n.public_wire) == secret_n
        if ENCRYPTION in plain.capabilities:
            message = b"native backend differential message"
            ct_p = plain.encrypt(key_p.public_wire, message, rng_p)
            ct_n = native.encrypt(key_n.public_wire, message, rng_n)
            assert ct_p == ct_n
            assert native.decrypt(key_n, ct_n) == message
        if SIGNATURE in plain.capabilities:
            message = b"native backend differential signature"
            sig_p = plain.sign(key_p, message, rng_p)
            sig_n = native.sign(key_n, message, rng_n)
            assert sig_p == sig_n
            assert native.verify(key_n.public_wire, message, sig_n)
            assert plain.verify(key_p.public_wire, message, sig_n)


class TestFiosKernel:
    @pytest.fixture(scope="class")
    def kernel(self):
        from repro.field.native import load_fios_kernel

        kernel = load_fios_kernel()
        if kernel is None:
            pytest.skip("no C compiler available for the FIOS kernel")
        return kernel

    def test_powmod_differential(self, kernel):
        rng = random.Random(23)
        for bits in (89, 170, 521, 1024):
            p = _random_odd_modulus(rng, bits)
            for _ in range(5):
                base = rng.randrange(0, p)
                exponent = rng.randrange(0, 1 << bits)
                assert kernel.powmod(base, exponent, p) == pow(base, exponent, p)

    def test_edge_exponents(self, kernel):
        p = 2**127 - 1
        assert kernel.powmod(5, 0, p) == 1
        assert kernel.powmod(0, 5, p) == 0
        assert kernel.powmod(5, 1, p) == 5
        assert kernel.powmod(5, p - 1, p) == 1  # Fermat

    def test_support_limits(self, kernel):
        assert not kernel.supports(2**64)  # even modulus
        assert not kernel.supports((2**8000) + 1)  # beyond the limb budget
        assert kernel.supports(2**127 - 1)

    def test_mont_mul_round_trip(self, kernel):
        p = 2**89 - 1
        rng = random.Random(29)
        r = 1 << (64 * ((p.bit_length() + 63) // 64))
        for _ in range(10):
            a, b = rng.randrange(p), rng.randrange(p)
            # mont_mul computes a*b*R^-1; multiply back by R to check.
            assert kernel.mont_mul(a, b, p) == a * b * pow(r, -1, p) % p


def _random_odd_modulus(rng, bits):
    modulus = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
    return modulus


# ---------------------------------------------------------------------------
# Batch APIs: byte identity with singles, and the inversion collapse.
# ---------------------------------------------------------------------------


class TestBatchProtocolIdentity:
    @pytest.mark.parametrize("backend", ["plain", "native"])
    @pytest.mark.parametrize("name", ["ecdh-p160", "ceilidh-toy32", "xtr-toy32"])
    def test_keygen_many_matches_singles(self, name, backend):
        singles_scheme = get_scheme(name, fresh=True, backend=backend)
        batch_scheme = get_scheme(name, fresh=True, backend=backend)
        # Same seed, same draw order: N batched keygens == N single keygens.
        rng_s, rng_b = random.Random(777), random.Random(777)
        singles = [singles_scheme.keygen(rng_s) for _ in range(5)]
        batch = batch_scheme.keygen_many(5, rng_b)
        assert [k.public_wire for k in batch] == [k.public_wire for k in singles]

    @pytest.mark.parametrize("backend", ["plain", "native"])
    @pytest.mark.parametrize("name", ["ecdh-p160", "ceilidh-toy32"])
    def test_key_agreement_many_matches_singles(self, name, backend):
        scheme = get_scheme(name, fresh=True, backend=backend)
        rng = random.Random(888)
        server = scheme.keygen(rng)
        peers = [scheme.keygen(rng).public_wire for _ in range(6)]
        batch = scheme.key_agreement_many(server, peers)
        assert batch == [scheme.key_agreement(server, peer) for peer in peers]


class TestBatchInversionCollapse:
    def _count_field_inversions(self, field, action):
        counter = {"inv": 0}
        original = field.inv

        def counting_inv(a):
            counter["inv"] += 1
            return original(a)

        field.inv = counting_inv
        try:
            result = action()
        finally:
            del field.inv
        return counter["inv"], result

    def test_serve_batch_does_one_inversion_per_group_round(self):
        # The acceptance check of the batching tentpole: an N-session ECDH
        # key-agreement batch performs exactly ONE modular inversion for its
        # single group round (the shared Jacobian->affine normalisation),
        # where the per-item path pays one per session.
        from repro.serve.session import serve_request, serve_request_batch

        scheme = get_scheme("ecdh-p160", fresh=True, backend="plain")
        field = scheme._curve_obj.field
        rng = random.Random(1001)
        server = scheme.keygen(rng)
        payloads = [scheme.keygen(rng).public_wire for _ in range(6)]

        batch_invs, batched = self._count_field_inversions(
            field,
            lambda: serve_request_batch(scheme, server, "key-agreement", payloads),
        )
        assert batch_invs == 1

        single_invs, singles = self._count_field_inversions(
            field,
            lambda: [
                serve_request(scheme, server, "key-agreement", payload)
                for payload in payloads
            ],
        )
        assert single_invs == len(payloads)
        # Identical responses: batching is an execution strategy, not a
        # semantic change.
        assert batched == singles

    def test_serve_batch_all_or_nothing_on_bad_payload(self):
        from repro.errors import ReproError
        from repro.serve.session import serve_request_batch

        scheme = get_scheme("ecdh-p160", fresh=True, backend="plain")
        rng = random.Random(1002)
        server = scheme.keygen(rng)
        payloads = [scheme.keygen(rng).public_wire, b"\x00garbage"]
        with pytest.raises(ReproError):
            serve_request_batch(scheme, server, "key-agreement", payloads)

    def test_run_batch_coalesced_matches_loop(self, monkeypatch):
        from repro.pkc.bench import run_batch

        # The group-op reduction below comes from the shared fixed-base
        # table, which a REPRO_BATCH_API=off environment disables.
        monkeypatch.setenv("REPRO_BATCH_API", "on")

        loop = run_batch(
            get_scheme("ecdh-p160", fresh=True), "key-agreement", 5,
            rng=random.Random(1003), coalesce=False,
        )
        coalesced = run_batch(
            get_scheme("ecdh-p160", fresh=True), "key-agreement", 5,
            rng=random.Random(1003), coalesce=True,
        )
        assert coalesced.wire_bytes == loop.wire_bytes
        assert coalesced.sessions == loop.sessions
        # The coalesced client phase shares one fixed-base doubling chain
        # across the batch, so it performs *fewer* group operations than the
        # loop — same wire bytes, cheaper execution.
        assert 0 < coalesced.ops.total < loop.ops.total
        assert coalesced.coalesced and coalesced.batch_size == loop.sessions
        assert not loop.coalesced and loop.batch_size is None
