"""Tests for Montgomery-domain exponentiation."""

import pytest

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.exponent import (
    ExponentiationTrace,
    montgomery_exponent,
    montgomery_ladder_exponent,
    montgomery_window_exponent,
)


@pytest.fixture(scope="module")
def domain(toy64_params):
    return MontgomeryDomain(toy64_params.p, word_bits=16)


class TestCorrectness:
    def test_matches_builtin_pow(self, domain, rng):
        p = domain.modulus
        for _ in range(10):
            base = rng.randrange(p)
            exponent = rng.randrange(1 << 40)
            assert montgomery_exponent(domain, base, exponent) == pow(base, exponent, p)

    def test_ladder_matches(self, domain, rng):
        p = domain.modulus
        base, exponent = rng.randrange(p), rng.randrange(1 << 40)
        assert montgomery_ladder_exponent(domain, base, exponent) == pow(base, exponent, p)

    def test_window_matches(self, domain, rng):
        p = domain.modulus
        base, exponent = rng.randrange(p), rng.randrange(1 << 60)
        for width in (1, 2, 4, 6):
            assert montgomery_window_exponent(domain, base, exponent, width) == pow(
                base, exponent, p
            )

    def test_zero_and_one_exponents(self, domain):
        assert montgomery_exponent(domain, 12345, 0) == 1
        assert montgomery_exponent(domain, 12345, 1) == 12345
        assert montgomery_ladder_exponent(domain, 12345, 0) == 1
        assert montgomery_window_exponent(domain, 12345, 0) == 1

    def test_negative_exponent_rejected(self, domain):
        for func in (montgomery_exponent, montgomery_ladder_exponent):
            with pytest.raises(ParameterError):
                func(domain, 2, -1)

    def test_bad_window_rejected(self, domain):
        with pytest.raises(ParameterError):
            montgomery_window_exponent(domain, 2, 5, window_bits=0)


class TestTraces:
    def test_binary_trace_counts(self, domain):
        trace = ExponentiationTrace(0, 0)
        exponent = 0b101101
        montgomery_exponent(domain, 7, exponent, trace)
        assert trace.squarings == exponent.bit_length() - 1
        assert trace.multiplications == bin(exponent).count("1") - 1
        assert trace.total == trace.squarings + trace.multiplications

    def test_ladder_trace_is_regular(self, domain):
        trace = ExponentiationTrace(0, 0)
        exponent = 0b110011
        montgomery_ladder_exponent(domain, 7, exponent, trace)
        assert trace.squarings == exponent.bit_length()
        assert trace.multiplications == exponent.bit_length()

    def test_rsa_sized_exponentiation_cost(self, domain):
        # The Table 3 composition assumes ~1.5 multiplications per exponent bit.
        trace = ExponentiationTrace(0, 0)
        exponent = (1 << 64) - 1 - (1 << 13)
        montgomery_exponent(domain, 3, exponent, trace)
        assert trace.total <= 2 * exponent.bit_length()
        assert trace.total >= exponent.bit_length()
