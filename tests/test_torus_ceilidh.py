"""Tests for the CEILIDH protocols (DH, hybrid encryption, signatures)."""

import random

import pytest

from repro.errors import DecryptionError, ParameterError
from repro.torus.ceilidh import CeilidhCiphertext, CeilidhSystem
from repro.torus.params import get_parameters


@pytest.fixture(scope="module")
def system():
    return CeilidhSystem("toy-32")


@pytest.fixture(scope="module")
def alice(system):
    return system.generate_keypair(random.Random(1))


@pytest.fixture(scope="module")
def bob(system):
    return system.generate_keypair(random.Random(2))


class TestKeyGeneration:
    def test_private_key_in_range(self, system, alice):
        assert 1 <= alice.private < system.params.q

    def test_public_key_decompresses_to_generator_power(self, system, alice):
        element = system.public_element(alice)
        expected = system.group.generator() ** alice.private
        assert element == expected

    def test_accepts_parameter_object(self):
        params = get_parameters("toy-20")
        system = CeilidhSystem(params)
        keypair = system.generate_keypair(random.Random(3))
        assert system.public_element(keypair) is not None

    def test_rejects_unknown_parameter_name(self):
        with pytest.raises(ParameterError):
            CeilidhSystem("no-such-params")

    def test_public_bytes(self, system, alice):
        data = alice.public_bytes(system.params)
        assert len(data) == 2 * ((system.params.p.bit_length() + 7) // 8)


class TestDiffieHellman:
    def test_shared_secret_agreement(self, system, alice, bob):
        assert system.shared_secret(alice, bob.public) == system.shared_secret(bob, alice.public)

    def test_derived_keys_agree(self, system, alice, bob):
        ka = system.derive_key(alice, bob.public, info=b"session", length=32)
        kb = system.derive_key(bob, alice.public, info=b"session", length=32)
        assert ka == kb and len(ka) == 32

    def test_different_info_different_keys(self, system, alice, bob):
        assert system.derive_key(alice, bob.public, b"a") != system.derive_key(
            alice, bob.public, b"b"
        )

    def test_third_party_gets_different_secret(self, system, alice, bob):
        eve = system.generate_keypair(random.Random(99))
        assert system.shared_secret(eve, bob.public) != system.shared_secret(alice, bob.public)


class TestEncryption:
    def test_roundtrip(self, system, bob, rng):
        message = b"the torus compresses six coordinates into two"
        ciphertext = system.encrypt(bob.public, message, rng)
        assert system.decrypt(bob, ciphertext) == message

    def test_empty_message(self, system, bob, rng):
        ciphertext = system.encrypt(bob.public, b"", rng)
        assert system.decrypt(bob, ciphertext) == b""

    def test_tampered_body_detected(self, system, bob, rng):
        ciphertext = system.encrypt(bob.public, b"attack at dawn", rng)
        tampered = CeilidhCiphertext(
            ephemeral=ciphertext.ephemeral,
            body=bytes([ciphertext.body[0] ^ 1]) + ciphertext.body[1:],
            tag=ciphertext.tag,
        )
        with pytest.raises(DecryptionError):
            system.decrypt(bob, tampered)

    def test_wrong_recipient_fails(self, system, alice, bob, rng):
        ciphertext = system.encrypt(bob.public, b"secret", rng)
        with pytest.raises(DecryptionError):
            system.decrypt(alice, ciphertext)

    def test_ciphertext_randomised(self, system, bob):
        c1 = system.encrypt(bob.public, b"same message", random.Random(10))
        c2 = system.encrypt(bob.public, b"same message", random.Random(11))
        assert c1.ephemeral != c2.ephemeral


class TestSignatures:
    def test_sign_verify(self, system, alice, rng):
        message = b"CEILIDH signature test"
        signature = system.sign(alice, message, rng)
        assert system.verify(alice.public, message, signature)

    def test_wrong_message_rejected(self, system, alice, rng):
        signature = system.sign(alice, b"original", rng)
        assert not system.verify(alice.public, b"forged", signature)

    def test_wrong_key_rejected(self, system, alice, bob, rng):
        signature = system.sign(alice, b"message", rng)
        assert not system.verify(bob.public, b"message", signature)

    def test_out_of_range_signature_rejected(self, system, alice, rng):
        signature = system.sign(alice, b"message", rng)
        signature.response = system.params.q
        assert not system.verify(alice.public, b"message", signature)

    def test_signature_components_in_range(self, system, alice, rng):
        signature = system.sign(alice, b"range check", rng)
        assert 0 <= signature.challenge < system.params.q
        assert 0 <= signature.response < system.params.q
