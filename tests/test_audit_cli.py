"""Suppressions, baseline round-trips, reporters and CLI exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.audit.__main__ import main
from repro.audit.baseline import apply_baseline, load_baseline, save_baseline
from repro.audit.engine import run_audit
from repro.audit.report import render_json, render_text, summarize, summary_line
from repro.audit.rules import ALL_RULES, RULE_IDS


VIOLATION = """
def f(q, guess):
    k = sample_exponent(q)
    tag = bytes(k)
    return tag == guess
"""

CLEAN = """
def f(q):
    return q + 1
"""


def write_tree(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def new_rules(result):
    return sorted({f.rule for f in result.findings if f.status == "new"})


# -- suppression markers --------------------------------------------------------


def test_trailing_allow_suppresses_the_finding(tmp_path):
    write_tree(
        tmp_path,
        """
        def f(q, guess):
            k = sample_exponent(q)
            return bytes(k) == guess  # audit: allow[CT103] fixture accepts the oracle
        """,
    )
    result = run_audit(tmp_path)
    assert new_rules(result) == []
    assert [f.rule for f in result.by_status("suppressed")] == ["CT103"]


def test_standalone_allow_covers_the_next_line(tmp_path):
    write_tree(
        tmp_path,
        """
        def f(q, guess):
            k = sample_exponent(q)
            # audit: allow[CT103] fixture accepts the oracle
            return bytes(k) == guess
        """,
    )
    result = run_audit(tmp_path)
    assert new_rules(result) == []


def test_allow_for_wrong_rule_does_not_suppress(tmp_path):
    write_tree(
        tmp_path,
        """
        def f(q, guess):
            k = sample_exponent(q)
            return bytes(k) == guess  # audit: allow[CT101] wrong rule id on purpose
        """,
    )
    result = run_audit(tmp_path)
    assert "CT103" in new_rules(result)


def test_unknown_rule_id_is_aud002(tmp_path):
    write_tree(
        tmp_path,
        """
        def f(q):
            return q  # audit: allow[XX999] no such rule
        """,
    )
    result = run_audit(tmp_path)
    assert "AUD002" in new_rules(result)


def test_allow_without_reason_is_aud003(tmp_path):
    write_tree(
        tmp_path,
        """
        def f(q, guess):
            k = sample_exponent(q)
            return bytes(k) == guess  # audit: allow[CT103]
        """,
    )
    result = run_audit(tmp_path)
    assert "AUD003" in new_rules(result)


def test_unused_allow_is_aud004_only_in_strict(tmp_path):
    write_tree(
        tmp_path,
        """
        def f(q):
            return q + 1  # audit: allow[CT103] nothing here to suppress
        """,
    )
    relaxed = run_audit(tmp_path, strict=False)
    strict = run_audit(tmp_path, strict=True)
    assert "AUD004" not in new_rules(relaxed)
    assert "AUD004" in new_rules(strict)


def test_syntax_error_is_aud001_not_a_crash(tmp_path):
    write_tree(tmp_path, "def broken(:\n    pass\n")
    result = run_audit(tmp_path)
    assert "AUD001" in new_rules(result)


# -- baseline round trip --------------------------------------------------------


def test_baseline_round_trip_accepts_then_detects_new(tmp_path):
    tree = tmp_path / "tree"
    write_tree(tree, VIOLATION)
    baseline_path = tmp_path / "AUDIT_baseline.json"

    first = run_audit(tree)
    assert new_rules(first) == ["CT103"]
    save_baseline(baseline_path, first.findings)

    second = run_audit(tree)
    apply_baseline(second.findings, load_baseline(baseline_path))
    assert new_rules(second) == []
    assert [f.rule for f in second.by_status("baselined")] == ["CT103"]

    # A new violation in a different function is NOT covered by the baseline.
    write_tree(
        tree,
        VIOLATION
        + """
def g(q):
    k = sample_exponent(q)
    print(k)
""",
    )
    third = run_audit(tree)
    apply_baseline(third.findings, load_baseline(baseline_path))
    assert new_rules(third) == ["CT104"]


def test_baseline_fingerprints_survive_line_drift(tmp_path):
    tree = tmp_path / "tree"
    write_tree(tree, VIOLATION)
    baseline_path = tmp_path / "AUDIT_baseline.json"
    save_baseline(baseline_path, run_audit(tree).findings)

    # Push the finding 40 lines down; the fingerprint must still match.
    write_tree(tree, "# padding\n" * 40 + textwrap.dedent(VIOLATION))
    drifted = run_audit(tree)
    apply_baseline(drifted.findings, load_baseline(baseline_path))
    assert new_rules(drifted) == []


def test_corrupt_baseline_raises(tmp_path):
    bad = tmp_path / "AUDIT_baseline.json"
    bad.write_text(json.dumps({"not": "a baseline"}), encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(bad)


# -- reporters ------------------------------------------------------------------


def test_json_report_carries_summary_block(tmp_path):
    write_tree(tmp_path, VIOLATION)
    result = run_audit(tmp_path)
    document = json.loads(render_json(result))
    summary = document["summary"]
    assert summary["rules_run"] == len(ALL_RULES)
    assert summary["modules_scanned"] == 1
    assert summary["new"] == 1
    assert summary["findings"] == len(document["findings"])
    assert {"rule", "path", "line", "col", "message", "context", "status"} <= set(
        document["findings"][0]
    )


def test_text_report_names_rule_and_context(tmp_path):
    write_tree(tmp_path, VIOLATION)
    result = run_audit(tmp_path)
    text = render_text(result)
    assert "CT103" in text
    assert "[f]" in text
    assert summary_line(summarize(result)) in text


# -- CLI ------------------------------------------------------------------------


def test_cli_exit_one_on_new_findings(tmp_path, capsys):
    write_tree(tmp_path, VIOLATION)
    code = main(["--root", str(tmp_path), "--no-baseline"])
    assert code == 1
    assert "CT103" in capsys.readouterr().out


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    write_tree(tmp_path, CLEAN)
    code = main(["--root", str(tmp_path), "--no-baseline"])
    assert code == 0


def test_cli_update_baseline_then_strict_gate_passes(tmp_path, capsys):
    write_tree(tmp_path, VIOLATION)
    baseline = tmp_path / "baseline.json"
    assert main(["--root", str(tmp_path), "--baseline", str(baseline), "--update-baseline"]) == 0
    assert baseline.exists()
    assert main(["--root", str(tmp_path), "--baseline", str(baseline), "--strict"]) == 0


def test_cli_json_report_written(tmp_path, capsys):
    write_tree(tmp_path, VIOLATION)
    report = tmp_path / "report.json"
    main(["--root", str(tmp_path), "--no-baseline", "--json", str(report)])
    document = json.loads(report.read_text(encoding="utf-8"))
    assert document["summary"]["new"] == 1


def test_cli_list_rules_covers_every_rule_id(tmp_path, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_cli_missing_root_is_usage_error(tmp_path, capsys):
    assert main(["--root", str(tmp_path / "nope")]) == 2
