"""The audit gate over the real tree, and proof no rule is dead.

Two guarantees the CI gate depends on:

* the shipped ``src/repro`` tree, with its inline allows and the committed
  ``AUDIT_baseline.json``, has **zero un-baselined findings** in strict
  mode — the same check ``python -m repro.audit --strict`` enforces;
* a seeded fixture tree planting one violation per shipped rule is fully
  detected — if a rule stops firing, this fails before the gate quietly
  stops guarding anything.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.audit.baseline import apply_baseline, load_baseline
from repro.audit.engine import run_audit
from repro.audit.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[1]
TREE_ROOT = Path(repro.__file__).resolve().parent
BASELINE = REPO_ROOT / "AUDIT_baseline.json"


def test_real_tree_is_clean_under_strict_gate():
    result = run_audit(TREE_ROOT, strict=True)
    apply_baseline(result.findings, load_baseline(BASELINE))
    new = result.by_status("new")
    assert not new, "un-baselined audit findings:\n" + "\n".join(
        f"{f.location} {f.rule} {f.message}" for f in new
    )


def test_committed_baseline_matches_the_tree():
    # Every accepted fingerprint still corresponds to a live finding —
    # stale entries mean someone fixed a finding without shrinking the
    # baseline, which hides regressions at the same site.
    result = run_audit(TREE_ROOT, strict=True)
    before = len(result.by_status("new")) + len(result.by_status("baselined"))
    apply_baseline(result.findings, load_baseline(BASELINE))
    assert len(result.by_status("baselined")) == len(load_baseline(BASELINE))
    assert before == len(result.by_status("new")) + len(result.by_status("baselined"))


PLANTED = {
    "ct.py": """
        import functools
        import pickle

        @functools.lru_cache(maxsize=None)
        def memoized(x):
            return x

        def branchy(q):
            k = sample_exponent(q)
            if k > 5:                      # CT101
                return 1
            return 0

        def keyed(q, table):
            k = sample_exponent(q)
            return table[k]                # CT102

        def compared(q, guess):
            k = sample_exponent(q)
            return bytes(k) == guess       # CT103

        def leaked(q):
            k = sample_exponent(q)
            print(k)                       # CT104
    """,
    "rc.py": """
        import random

        def seeded():
            return random.Random()         # RC201

        def encode_raw(field, x):
            return x.value + 1             # RC202

        def keygen_many(count, rng=None):
            out = []
            for _ in range(count):
                r = resolve_rng(rng)       # RC203
                out.append(r.random())
            return out
    """,
    "serve/loop.py": """
        async def handle(self, scheme):
            return keygen(scheme)          # RC204
    """,
}


def test_every_shipped_rule_detects_its_planted_violation(tmp_path):
    for name, source in PLANTED.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    result = run_audit(tmp_path)
    fired = {finding.rule for finding in result.by_status("new")}
    missing = {rule.id for rule in ALL_RULES} - fired
    assert not missing, f"dead rules (no finding on planted violation): {sorted(missing)}"
