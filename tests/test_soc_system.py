"""Tests for the top-level Platform object."""

import pytest

from repro.errors import ParameterError
from repro.ecc.curves import SECP160R1
from repro.ecc.point import JacobianPoint
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.soc.sequences import fp6_multiplication_program
from repro.soc.system import OperationTiming, Platform, PlatformConfig, default_rsa_modulus
from repro.torus.params import CEILIDH_170, get_parameters


class TestDefaults:
    def test_default_rsa_modulus_is_deterministic(self):
        assert default_rsa_modulus(1024) == default_rsa_modulus(1024)
        assert default_rsa_modulus(1024).bit_length() == 1024
        assert default_rsa_modulus(1024) % 2 == 1

    def test_engines_are_cached(self, platform, toy64_params):
        assert platform.engine_for(toy64_params.p) is platform.engine_for(toy64_params.p)

    def test_interrupt_round_trip(self, platform):
        assert platform.interrupt_round_trip_cycles == 184


class TestTable1Measurements:
    def test_operation_costs_shape(self, platform, toy64_params):
        costs = platform.measure_operation_costs(toy64_params.p, label="toy")
        assert costs.modular_mult > costs.modular_sub >= costs.modular_add > 0

    def test_torus_operation_costs(self, platform):
        costs = platform.measure_operation_costs(CEILIDH_170.p)
        # Within a factor ~2 of the paper's Table 1 values and with its shape.
        assert 150 <= costs.modular_mult <= 400
        assert 35 <= costs.modular_add <= 100
        assert costs.modular_mult > 4 * costs.modular_add


class TestTable2Composition:
    def test_fp6_sequence_costs(self, platform):
        cost = platform.fp6_multiplication_cost(CEILIDH_170.p)
        assert cost.operations == 82
        assert cost.type_b_cycles < cost.type_a_cycles
        assert 2.0 < cost.speedup < 5.0  # paper: 3.78

    def test_ecc_point_costs(self, platform):
        pa, pd = platform.ecc_point_costs(SECP160R1.p)
        assert pa.type_a_cycles > pd.type_a_cycles  # PA has more multiplications
        assert pa.type_b_cycles > pd.type_b_cycles
        assert pd.type_a_cycles / pd.type_b_cycles > 1.5


class TestTable3Composition:
    def test_torus_timing(self, platform):
        timing = platform.torus_exponentiation_timing(CEILIDH_170)
        assert isinstance(timing, OperationTiming)
        assert timing.group_operations == 253
        assert 15 < timing.milliseconds < 50  # paper: 20 ms
        assert timing.area_slices == 5419

    def test_rsa_timing(self, platform):
        timing = platform.rsa_exponentiation_timing(1024)
        assert 80 < timing.milliseconds < 160  # paper: 96 ms

    def test_ecc_timing(self, platform):
        timing = platform.ecc_scalar_multiplication_timing(SECP160R1)
        assert 7 < timing.milliseconds < 25  # paper: 9.4 ms

    def test_paper_orderings_hold(self, platform):
        torus = platform.torus_exponentiation_timing(CEILIDH_170)
        rsa = platform.rsa_exponentiation_timing(1024)
        ecc = platform.ecc_scalar_multiplication_timing(SECP160R1)
        # The paper's qualitative result: ECC < torus < RSA.
        assert ecc.milliseconds < torus.milliseconds < rsa.milliseconds
        assert rsa.milliseconds / torus.milliseconds > 2.5
        assert 1.5 < torus.milliseconds / ecc.milliseconds < 3.5

    def test_type_a_slower_than_type_b(self, platform):
        type_a = platform.torus_exponentiation_timing(CEILIDH_170, hierarchy="type-a")
        type_b = platform.torus_exponentiation_timing(CEILIDH_170, hierarchy="type-b")
        assert type_a.milliseconds > 2 * type_b.milliseconds


class TestHierarchyTraces:
    def test_type_a_dominated_by_interface(self, platform):
        trace = platform.hierarchy_trace(
            fp6_multiplication_program(), CEILIDH_170.p, "type-a"
        )
        assert trace.communication_fraction() > 0.5

    def test_type_b_dominated_by_compute(self, platform):
        trace = platform.hierarchy_trace(
            fp6_multiplication_program(), CEILIDH_170.p, "type-b"
        )
        assert trace.communication_fraction() < 0.2

    def test_unknown_hierarchy_rejected(self, platform):
        with pytest.raises(ParameterError):
            platform.hierarchy_trace(fp6_multiplication_program(), CEILIDH_170.p, "type-c")

    def test_trace_render(self, platform):
        trace = platform.hierarchy_trace(
            fp6_multiplication_program(), CEILIDH_170.p, "type-b"
        )
        text = trace.render()
        assert "compute" in text and "cycle breakdown" in text


class TestFunctionalExecution:
    def test_fp6_multiplication_through_coprocessor(self, toy64_params, rng):
        platform = Platform(PlatformConfig(num_cores=4))
        field = PrimeField(toy64_params.p)
        fp6 = make_fp6(field)
        a, b = fp6.random_element(rng), fp6.random_element(rng)
        result, cycles = platform.run_fp6_multiplication(fp6, a, b, cycle_accurate=True)
        assert result == fp6.mul(a, b)
        assert cycles > 0

    def test_fp6_multiplication_software_backend(self, toy64_params, rng):
        platform = Platform()
        field = PrimeField(toy64_params.p)
        fp6 = make_fp6(field)
        a, b = fp6.random_element(rng), fp6.random_element(rng)
        result, cycles = platform.run_fp6_multiplication(fp6, a, b, cycle_accurate=False)
        assert result == fp6.mul(a, b)
        assert cycles == platform.fp6_multiplication_cost(toy64_params.p).type_b_cycles

    def test_ecc_point_operations_through_coprocessor(self, toy_curve):
        platform = Platform()
        curve, generator = toy_curve.build()
        jacobian = generator.to_jacobian()
        (x3, y3, z3), cycles = platform.run_ecc_point_operation(
            curve.field.p,
            curve.a,
            {"X1": jacobian.x, "Y1": jacobian.y, "Z1": jacobian.z},
            operation="double",
            cycle_accurate=True,
        )
        assert JacobianPoint(curve, x3, y3, z3) == jacobian.double()
        assert cycles > 0

    def test_ecc_addition_through_coprocessor(self, toy_curve):
        platform = Platform()
        curve, generator = toy_curve.build()
        p1 = generator.to_jacobian()
        p2 = generator.double().to_jacobian()
        (x3, y3, z3), _ = platform.run_ecc_point_operation(
            curve.field.p,
            curve.a,
            {"X1": p1.x, "Y1": p1.y, "Z1": p1.z, "X2": p2.x, "Y2": p2.y, "Z2": p2.z},
            operation="add",
            cycle_accurate=True,
        )
        assert JacobianPoint(curve, x3, y3, z3) == p1.add(p2)

    def test_unknown_point_operation_rejected(self, toy_curve):
        platform = Platform()
        curve, generator = toy_curve.build()
        with pytest.raises(ParameterError):
            platform.run_ecc_point_operation(curve.field.p, curve.a, {}, operation="triple")
