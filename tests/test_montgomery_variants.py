"""Tests for the SOS and CIOS Montgomery variants."""

import pytest

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.fios import fios_multiply
from repro.montgomery.variants import cios_multiply, sos_multiply


@pytest.fixture(scope="module", params=[16, 32])
def domain(request, toy64_params):
    return MontgomeryDomain(toy64_params.p, word_bits=request.param)


class TestVariantsAgree:
    def test_sos_matches_reference(self, domain, rng):
        p = domain.modulus
        for _ in range(20):
            xb, yb = rng.randrange(p), rng.randrange(p)
            assert sos_multiply(domain, xb, yb) == domain.mont_mul(xb, yb)

    def test_cios_matches_reference(self, domain, rng):
        p = domain.modulus
        for _ in range(20):
            xb, yb = rng.randrange(p), rng.randrange(p)
            assert cios_multiply(domain, xb, yb) == domain.mont_mul(xb, yb)

    def test_all_three_agree(self, domain, rng):
        p = domain.modulus
        for _ in range(10):
            xb, yb = rng.randrange(p), rng.randrange(p)
            reference = fios_multiply(domain, xb, yb)
            assert sos_multiply(domain, xb, yb) == reference
            assert cios_multiply(domain, xb, yb) == reference

    def test_edge_cases(self, domain):
        p = domain.modulus
        for func in (sos_multiply, cios_multiply):
            assert func(domain, 0, p - 1) == 0
            assert func(domain, domain.one(), domain.one()) == domain.mont_mul(
                domain.one(), domain.one()
            )

    def test_range_checks(self, domain):
        with pytest.raises(ParameterError):
            sos_multiply(domain, domain.modulus, 0)
        with pytest.raises(ParameterError):
            cios_multiply(domain, 0, domain.modulus + 1)

    def test_170_bit_modulus(self, ceilidh170_params, rng):
        domain = MontgomeryDomain(ceilidh170_params.p, word_bits=16)
        p = domain.modulus
        xb, yb = rng.randrange(p), rng.randrange(p)
        reference = domain.mont_mul(xb, yb)
        assert sos_multiply(domain, xb, yb) == reference
        assert cios_multiply(domain, xb, yb) == reference
