"""Tests for the wire encodings and the bandwidth accounting."""

import pytest

from repro.errors import ParameterError
from repro.torus.compression import CompressedElement
from repro.torus.encoding import (
    bandwidth_summary,
    compressed_size_bytes,
    decode_compressed,
    decode_fp6,
    encode_compressed,
    encode_fp6,
    uncompressed_size_bytes,
)


class TestCompressedEncoding:
    def test_roundtrip(self, toy32_group, rng):
        params = toy32_group.params
        element = toy32_group.random_subgroup_element(rng)
        compressed = element.compress()
        data = encode_compressed(params, compressed)
        assert len(data) == compressed_size_bytes(params)
        assert decode_compressed(params, data) == compressed

    def test_fixed_width(self, toy32_params):
        data = encode_compressed(toy32_params, CompressedElement(1, 2))
        assert len(data) == compressed_size_bytes(toy32_params)

    def test_rejects_unreduced_values(self, toy32_params):
        with pytest.raises(ParameterError):
            encode_compressed(toy32_params, CompressedElement(toy32_params.p, 0))

    def test_decode_length_check(self, toy32_params):
        with pytest.raises(ParameterError):
            decode_compressed(toy32_params, b"\x00" * 3)

    def test_decode_range_check(self, toy32_params):
        width = compressed_size_bytes(toy32_params) // 2
        data = (toy32_params.p).to_bytes(width, "big") * 2
        with pytest.raises(ParameterError):
            decode_compressed(toy32_params, data)


class TestFp6Encoding:
    def test_roundtrip(self, toy32_group, rng):
        params = toy32_group.params
        element = toy32_group.random_element(rng).value
        data = encode_fp6(params, element)
        assert len(data) == uncompressed_size_bytes(params)
        assert decode_fp6(params, toy32_group.fp6, data) == element

    def test_length_check(self, toy32_group):
        with pytest.raises(ParameterError):
            decode_fp6(toy32_group.params, toy32_group.fp6, b"\x01" * 5)


class TestBandwidth:
    def test_compression_factor_three(self, toy32_params, ceilidh170_params):
        for params in (toy32_params, ceilidh170_params):
            compressed_bits, uncompressed_bits, factor = bandwidth_summary(params)
            assert factor == 3
            assert compressed_bits == 2 * params.p_bits
            assert uncompressed_bits == 6 * params.p_bits

    def test_170_bit_sizes(self, ceilidh170_params):
        # Two Fp values at 170 bits: 340 bits on the wire - a third of the
        # 1024-bit RSA modulus the paper compares against.
        compressed_bits, _, _ = bandwidth_summary(ceilidh170_params)
        assert compressed_bits == 340
        assert compressed_bits * 3 >= 1020

    def test_byte_sizes(self, ceilidh170_params):
        assert compressed_size_bytes(ceilidh170_params) == 2 * 22
        assert uncompressed_size_bytes(ceilidh170_params) == 6 * 22
