"""Tests for the vectorised batch field API and its consumers.

Covers the :class:`~repro.field.backend.FieldOps` array methods on every
backend (per-item loop equivalence, empty and singleton batches, mixed
exponent widths, exponents 0/1 and negatives), the native kernel's
one-call batched powmod, the ``REPRO_BATCH_API`` escape hatch, the
``exponentiate_many`` seam, scheme-level batch-vs-loop byte identity for
every registry scheme on every backend, the serve scheduler's partial-
failure salvage, and the hash-cached kernel artifact reuse across fresh
processes.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.errors import ParameterError
from repro.field import PrimeField
from repro.field.backend import BATCH_API_ENV_VAR, batch_api_enabled, get_backend
from repro.field.native import native_substrate_name
from repro.pkc import get_scheme
from repro.pkc.base import KEY_AGREEMENT, SIGNATURE
from repro.pkc.registry import available_schemes

P32 = 2494740737  # toy-32 CEILIDH prime (p = 2 mod 9)
P127 = (1 << 127) - 1  # multi-word: exercises the kernel's limb paths

BACKENDS = ("plain", "montgomery", "native", "word-counting")
WIRE_BACKENDS = ("plain", "montgomery", "native")


def _fields(p):
    plain = PrimeField(p, check_prime=False)
    return plain, {name: PrimeField(p, check_prime=False, backend=name) for name in BACKENDS}


# ---------------------------------------------------------------------------
# FieldOps array methods: batch == loop on every backend.
# ---------------------------------------------------------------------------


class TestFieldOpsBatch:
    @pytest.mark.parametrize("p", [P32, P127])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pairwise_many_match_loops(self, backend, p):
        field = PrimeField(p, check_prime=False, backend=backend)
        rng = random.Random(41)
        a = [field.enter(rng.randrange(p)) for _ in range(9)]
        b = [field.enter(rng.randrange(p)) for _ in range(9)]
        assert field.backend.add_many(a, b) == [field.add(x, y) for x, y in zip(a, b)]
        assert field.backend.sub_many(a, b) == [field.sub(x, y) for x, y in zip(a, b)]
        assert field.backend.mul_many(a, b) == [field.mul(x, y) for x, y in zip(a, b)]
        assert field.backend.sqr_many(a) == [field.sqr(x) for x in a]

    @pytest.mark.parametrize("p", [P32, P127])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pow_many_matches_loop(self, backend, p):
        field = PrimeField(p, check_prime=False, backend=backend)
        rng = random.Random(42)
        # Mixed widths on purpose: tiny, huge, and the 0/1 edge exponents.
        exponents = [0, 1, 2, rng.randrange(p), rng.getrandbits(8), rng.getrandbits(200)]
        bases = [field.enter(rng.randrange(1, p)) for _ in exponents]
        assert field.pow_many(bases, exponents) == [
            field.pow(base, e) for base, e in zip(bases, exponents)
        ]

    @pytest.mark.parametrize("p", [P32, P127])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pow_many_shared_base_matches_loop(self, backend, p):
        field = PrimeField(p, check_prime=False, backend=backend)
        rng = random.Random(43)
        base = field.enter(rng.randrange(2, p))
        exponents = [0, 1, rng.getrandbits(30), rng.randrange(p), rng.getrandbits(190)]
        assert field.pow_many_shared_base(base, exponents) == [
            field.pow(base, e) for e in exponents
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_negative_exponents(self, backend):
        field = PrimeField(P127, check_prime=False, backend=backend)
        rng = random.Random(44)
        bases = [field.enter(rng.randrange(1, P127)) for _ in range(4)]
        exponents = [-1, -rng.getrandbits(60), 5, -3]
        assert field.pow_many(bases, exponents) == [
            field.pow(base, e) for base, e in zip(bases, exponents)
        ]
        assert field.pow_many_shared_base(bases[0], exponents) == [
            field.pow(bases[0], e) for e in exponents
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_and_singleton(self, backend):
        field = PrimeField(P32, check_prime=False, backend=backend)
        assert field.pow_many([], []) == []
        assert field.pow_many_shared_base(field.enter(7), []) == []
        one = field.pow_many([field.enter(5)], [123])
        assert one == [field.pow(field.enter(5), 123)]

    def test_length_mismatch_raises(self):
        field = PrimeField(P32, check_prime=False)
        with pytest.raises(ParameterError):
            field.pow_many([1, 2], [3])
        with pytest.raises(ParameterError):
            field.backend.mul_many([1], [2, 3])

    def test_word_counting_pow_many_still_tallies(self):
        from repro.field import WordCountingBackend

        spec = WordCountingBackend()
        field = PrimeField(P32, check_prime=False, backend=spec)
        bases = [field.enter(123456), field.enter(654321)]
        spec.stream.reset()
        field.pow_many(bases, [1 << 20, (1 << 20) + 7])
        assert spec.stream.word_mults > 0

    def test_montgomery_cross_check_against_plain(self):
        plain = PrimeField(P127, check_prime=False)
        mont = PrimeField(P127, check_prime=False, backend="montgomery")
        rng = random.Random(45)
        base = rng.randrange(2, P127)
        exponents = [rng.getrandbits(100) for _ in range(6)]
        resident = mont.pow_many_shared_base(mont.enter(base), exponents)
        assert [mont.exit(value) for value in resident] == plain.pow_many_shared_base(
            base, exponents
        )


# ---------------------------------------------------------------------------
# The native kernel's one-call batched powmod.
# ---------------------------------------------------------------------------


kernel_only = pytest.mark.skipif(
    native_substrate_name() != "fios-c", reason="compiled FIOS kernel not active"
)


@kernel_only
class TestKernelPowmodBatch:
    def _kernel(self):
        from repro.field.native import load_fios_kernel

        return load_fios_kernel()

    def test_batch_matches_python_pow(self):
        kernel = self._kernel()
        rng = random.Random(46)
        for p in (P32, P127, (1 << 255) - 19):
            bases = [rng.randrange(p) for _ in range(5)] + [0, 1, p - 1]
            exps = [rng.getrandbits(bits) for bits in (3, 64, 130, 200, 17)] + [0, 1, 2]
            assert kernel.powmod_batch(bases, exps, p) == [
                pow(base, e, p) for base, e in zip(bases, exps)
            ]

    def test_batch_is_one_native_call(self, monkeypatch):
        kernel = self._kernel()
        calls = {"batch": 0}
        real = kernel._lib.repro_fios_powmod_batch

        def counting(*args):
            calls["batch"] += 1
            return real(*args)

        monkeypatch.setattr(kernel._lib, "repro_fios_powmod_batch", counting)
        rng = random.Random(47)
        bases = [rng.randrange(P127) for _ in range(16)]
        exps = [rng.getrandbits(120) for _ in range(16)]
        expected = [pow(base, e, P127) for base, e in zip(bases, exps)]
        assert kernel.powmod_batch(bases, exps, P127) == expected
        assert calls["batch"] == 1  # N ladders, ONE ctypes crossing

    def test_batch_validation(self):
        kernel = self._kernel()
        assert kernel.powmod_batch([], [], P32) == []
        with pytest.raises(ValueError):
            kernel.powmod_batch([1, 2], [3], P32)
        with pytest.raises(ValueError):
            kernel.powmod_batch([2], [-1], P32)


@kernel_only
def test_kernel_artifact_reused_across_fresh_processes(tmp_path):
    """Two fresh interpreters resolve the substrate onto ONE cached artifact.

    The artifact file name is the hash of the kernel source, so a second
    process must find (not rebuild) the first one's shared object: same
    path, unchanged mtime.
    """
    script = (
        "from repro.field.native import resolve_substrate\n"
        "name, handle = resolve_substrate()\n"
        "assert name == 'fios-c', name\n"
        "print(handle.path)\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_NATIVE_KERNEL", None)

    def run_once():
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=180, env=env,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout.strip()

    first = run_once()
    assert os.path.exists(first)
    mtime = os.path.getmtime(first)
    second = run_once()
    assert second == first
    assert os.path.getmtime(first) == mtime  # reused, not rebuilt


# ---------------------------------------------------------------------------
# The REPRO_BATCH_API escape hatch.
# ---------------------------------------------------------------------------


class TestBatchApiToggle:
    def test_parsing(self, monkeypatch):
        monkeypatch.delenv(BATCH_API_ENV_VAR, raising=False)
        assert batch_api_enabled()
        for value in ("0", "off", "no", "false", "OFF", "No"):
            monkeypatch.setenv(BATCH_API_ENV_VAR, value)
            assert not batch_api_enabled()
        for value in ("1", "on", "yes", "anything"):
            monkeypatch.setenv(BATCH_API_ENV_VAR, value)
            assert batch_api_enabled()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_off_never_changes_values(self, backend, monkeypatch):
        field = PrimeField(P127, check_prime=False, backend=backend)
        rng = random.Random(48)
        base = field.enter(rng.randrange(2, P127))
        bases = [field.enter(rng.randrange(1, P127)) for _ in range(5)]
        exponents = [rng.getrandbits(90) for _ in range(5)]
        on_shared = field.pow_many_shared_base(base, exponents)
        on_many = field.pow_many(bases, exponents)
        monkeypatch.setenv(BATCH_API_ENV_VAR, "off")
        assert field.pow_many_shared_base(base, exponents) == on_shared
        assert field.pow_many(bases, exponents) == on_many

    def test_off_disables_shared_table(self, monkeypatch):
        from repro.exp import strategies

        calls = {"tables": 0}
        real = strategies.FixedBaseTable

        class Counting(real):
            def __init__(self, *args, **kwargs):
                calls["tables"] += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(strategies, "FixedBaseTable", Counting)
        # The resident-Montgomery backend is the one whose shared-base path
        # builds a fixed-base table; off must keep it on the per-item loop.
        field = PrimeField(P127, check_prime=False, backend="montgomery")
        base = field.enter(3)
        exponents = [random.Random(49).getrandbits(80) for _ in range(4)]
        monkeypatch.setenv(BATCH_API_ENV_VAR, "off")
        field.pow_many_shared_base(base, exponents)
        assert calls["tables"] == 0
        monkeypatch.setenv(BATCH_API_ENV_VAR, "on")
        field.pow_many_shared_base(base, exponents)
        assert calls["tables"] == 1


# ---------------------------------------------------------------------------
# The exponentiation-engine seam.
# ---------------------------------------------------------------------------


class TestExponentiateMany:
    def test_matches_per_item_and_groups_shared_bases(self, monkeypatch):
        from repro.exp.group import FieldExpGroup
        from repro.exp.strategies import exponentiate, exponentiate_many
        from repro.exp.trace import OpTrace

        # The squaring-reduction claim needs the batch API on (a
        # REPRO_BATCH_API=off environment degrades to the per-item loop).
        monkeypatch.setenv(BATCH_API_ENV_VAR, "on")
        group = FieldExpGroup(PrimeField(P127, check_prime=False))
        rng = random.Random(50)
        shared = rng.randrange(2, P127)
        bases = [shared, rng.randrange(2, P127), shared, shared, rng.randrange(2, P127)]
        exponents = [rng.getrandbits(120) for _ in bases]
        results = exponentiate_many(group, bases, exponents)
        assert results == [
            exponentiate(group, base, e) for base, e in zip(bases, exponents)
        ]
        # The three shared-base items ride one table: fewer squarings than
        # the per-item loop.
        batched, looped = OpTrace(), OpTrace()
        exponentiate_many(group, bases, exponents, trace=batched)
        for base, e in zip(bases, exponents):
            exponentiate(group, base, e, trace=looped)
        assert batched.squarings < looped.squarings

    def test_length_mismatch_and_empty(self):
        from repro.exp.group import FieldExpGroup
        from repro.exp.strategies import exponentiate_many

        group = FieldExpGroup(PrimeField(P32, check_prime=False))
        assert exponentiate_many(group, [], []) == []
        with pytest.raises(ParameterError):
            exponentiate_many(group, [2], [3, 4])

    def test_montgomery_power_many(self):
        from repro.montgomery.domain import MontgomeryDomain
        from repro.montgomery.exponent import montgomery_power, montgomery_power_many

        domain = MontgomeryDomain(P127)
        rng = random.Random(51)
        bases = [rng.randrange(P127) for _ in range(5)]
        exps = [0, 1, rng.getrandbits(60), rng.getrandbits(126), 2]
        assert montgomery_power_many(domain, bases, exps) == [
            montgomery_power(domain, base, e) for base, e in zip(bases, exps)
        ]
        with pytest.raises(ParameterError):
            montgomery_power_many(domain, [2], [-1])


# ---------------------------------------------------------------------------
# Scheme-level batch == loop, byte for byte, on every backend.
# ---------------------------------------------------------------------------


class TestSchemeBatchDifferential:
    @pytest.mark.parametrize("backend", WIRE_BACKENDS)
    @pytest.mark.parametrize("name", available_schemes())
    def test_key_agreement_with_many_matches_loop(self, name, backend):
        scheme = get_scheme(name, fresh=True, backend=backend)
        if KEY_AGREEMENT not in scheme.capabilities:
            pytest.skip(f"{name} has no key agreement")
        rng = random.Random(52)
        server = scheme.keygen(rng)
        clients = scheme.keygen_many(5, rng)
        batched = scheme.key_agreement_with_many(clients, server.public_wire)
        assert batched == [
            scheme.key_agreement(client, server.public_wire) for client in clients
        ]
        assert scheme.key_agreement_with_many([], server.public_wire) == []
        assert scheme.key_agreement_with_many(clients[:1], server.public_wire) == batched[:1]

    @pytest.mark.parametrize("backend", WIRE_BACKENDS)
    @pytest.mark.parametrize("name", available_schemes())
    def test_sign_many_matches_loop(self, name, backend):
        scheme = get_scheme(name, fresh=True, backend=backend)
        if SIGNATURE not in scheme.capabilities:
            pytest.skip(f"{name} has no signatures")
        rng = random.Random(53)
        server = scheme.keygen(rng)
        messages = [b"msg-%d" % i for i in range(4)]
        # Identical RNG draw order: same seed for the batch and the loop.
        batched = scheme.sign_many(server, messages, rng=random.Random(54))
        loop_rng = random.Random(54)
        looped = [scheme.sign(server, message, rng=loop_rng) for message in messages]
        assert batched == looped
        for message, signature in zip(messages, batched):
            assert scheme.verify(server.public_wire, message, signature)

    @pytest.mark.parametrize("name", available_schemes())
    def test_run_batch_coalesced_wire_identity(self, name):
        from repro.pkc.bench import run_batch

        scheme = get_scheme(name, fresh=True)
        if KEY_AGREEMENT not in scheme.capabilities:
            pytest.skip(f"{name} has no key agreement")
        loop = run_batch(
            get_scheme(name, fresh=True), "key-agreement", 4,
            rng=random.Random(55), coalesce=False,
        )
        coalesced = run_batch(
            get_scheme(name, fresh=True), "key-agreement", 4,
            rng=random.Random(55), coalesce=True,
        )
        assert coalesced.wire_bytes == loop.wire_bytes
        assert coalesced.coalesced and coalesced.batch_size == 4
        assert loop.batch_size is None

    def test_batch_api_off_keeps_wire_identical(self, monkeypatch):
        from repro.pkc.bench import run_batch

        on = run_batch(
            get_scheme("ceilidh-170", fresh=True), "key-agreement", 4,
            rng=random.Random(56), coalesce=True,
        )
        monkeypatch.setenv(BATCH_API_ENV_VAR, "off")
        off = run_batch(
            get_scheme("ceilidh-170", fresh=True), "key-agreement", 4,
            rng=random.Random(56), coalesce=True,
        )
        assert on.wire_bytes == off.wire_bytes
        assert on.sessions == off.sessions


# ---------------------------------------------------------------------------
# Serve: batch routing and partial-failure salvage.
# ---------------------------------------------------------------------------


class TestServeBatchSalvage:
    def _scheme_and_key(self, name="ecdh-p160"):
        scheme = get_scheme(name, fresh=True)
        return scheme, scheme.keygen(random.Random(57))

    def test_sign_kind_routes_through_sign_many(self):
        from repro.serve.session import serve_request, serve_request_batch

        scheme, server = self._scheme_and_key("rsa-1024")
        payloads = [b"sign-me-%d" % i for i in range(3)]
        batched = serve_request_batch(scheme, server, "sign", payloads)
        assert batched == [
            serve_request(scheme, server, "sign", payload) for payload in payloads
        ]

    def test_partial_failure_carries_completed_items(self):
        from repro.serve.session import BatchItemFailure, serve_request, serve_request_batch

        scheme, server = self._scheme_and_key()
        good = scheme.encrypt(server.public_wire, b"ok", random.Random(58))
        payloads = [good, b"\x00garbage", good]
        with pytest.raises(BatchItemFailure) as excinfo:
            serve_request_batch(scheme, server, "decrypt", payloads)
        partial = excinfo.value.partial
        assert len(partial) == 3
        assert partial[0] == serve_request(scheme, server, "decrypt", good)
        assert partial[1] is None and partial[2] is None

    def test_execute_batch_salvages_and_skips_reexecution(self, monkeypatch):
        from repro.serve import scheduler as sched

        scheme, server = self._scheme_and_key()
        good = scheme.encrypt(server.public_wire, b"ok", random.Random(59))
        payloads = [good, b"\x00garbage", good]
        expected_ok = sched.serve_request(scheme, server, "decrypt", good)

        calls = {"per_item": 0}
        real = sched.serve_request

        def counting(*args, **kwargs):
            calls["per_item"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(sched, "serve_request", counting)
        results, busy, coalesced, salvaged = sched._execute_batch(
            scheme, server, "decrypt", payloads
        )
        assert not coalesced
        assert salvaged == 1  # item 0 reused from the failed coalesced pass
        # Only the unresolved slots (indices 1 and 2) re-executed.
        assert calls["per_item"] == 2
        assert results[0] == (True,) + expected_ok
        assert results[0] == results[2]
        ok, code, detail = results[1]
        assert not ok and detail

    def test_fully_successful_batch_reports_coalesced(self):
        from repro.serve.scheduler import _execute_batch

        scheme, server = self._scheme_and_key()
        rng = random.Random(60)
        payloads = [scheme.keygen(rng).public_wire for _ in range(4)]
        results, busy, coalesced, salvaged = _execute_batch(
            scheme, server, "key-agreement", payloads
        )
        assert coalesced and salvaged == 0
        assert all(ok for ok, _, _ in results)

    def test_group_stats_salvaged_counter_exists(self):
        from repro.serve.scheduler import GroupStats

        stats = GroupStats()
        assert stats.salvaged == 0
