"""Tests for the VLIW scheduler (assembler)."""

import pytest

from repro.errors import AssemblyError, ScheduleError
from repro.soc.assembler import CoreProgram, schedule_programs
from repro.soc.isa import ld, mac, st


def _programs(*instruction_lists):
    return [CoreProgram(core_id=i, instructions=list(instrs)) for i, instrs in enumerate(instruction_lists)]


class TestBasicScheduling:
    def test_single_core_sequential(self):
        programs = _programs([mac(0, 1), mac(2, 3), st(0, 0)])
        schedule = schedule_programs(programs)
        assert schedule.cycles == 3
        assert schedule.instruction_count == 3

    def test_independent_cores_run_in_parallel(self):
        programs = _programs([mac(0, 1)] * 4, [mac(2, 3)] * 4)
        schedule = schedule_programs(programs)
        assert schedule.cycles == 4  # no structural conflicts

    def test_program_order_preserved_per_core(self):
        programs = _programs([ld(0, 0), mac(0, 0), st(1, 0)])
        schedule = schedule_programs(programs)
        ops = [bundle[0].op.value for bundle in schedule.bundles]
        assert ops == ["LD", "MAC", "ST"]


class TestMemoryPort:
    def test_single_port_serialises_loads(self):
        programs = _programs([ld(0, 0)], [ld(0, 1)])
        schedule = schedule_programs(programs)
        assert schedule.cycles == 2
        schedule.validate_port_constraint()

    def test_broadcast_load_shares_the_port(self):
        # Two cores loading the SAME address may share one cycle.
        programs = _programs([ld(0, 5)], [ld(0, 5)])
        schedule = schedule_programs(programs)
        assert schedule.cycles == 1
        schedule.validate_port_constraint()

    def test_store_plus_load_never_share(self):
        programs = _programs([st(5, 0)], [ld(0, 5)])
        schedule = schedule_programs(programs)
        assert schedule.cycles == 2

    def test_memory_cycles_statistic(self):
        programs = _programs([ld(0, 0), mac(0, 0)], [mac(1, 1), ld(1, 1)])
        schedule = schedule_programs(programs)
        assert schedule.memory_cycles == 2

    def test_utilization(self):
        programs = _programs([mac(0, 0), mac(0, 0)], [mac(1, 1)])
        schedule = schedule_programs(programs)
        utilization = schedule.utilization()
        assert utilization[0] == 1.0
        assert 0.0 < utilization[1] <= 1.0


class TestDependencies:
    def test_wait_for_orders_across_cores(self):
        producer = [st(9, 0, tag="value")]
        consumer = [ld(0, 9, wait_for=("value",))]
        schedule = schedule_programs(_programs(producer, consumer))
        # The consumer must issue strictly after the producer's cycle.
        producer_cycle = next(i for i, b in enumerate(schedule.bundles) if b[0] is not None)
        consumer_cycle = next(i for i, b in enumerate(schedule.bundles) if b[1] is not None)
        assert consumer_cycle > producer_cycle

    def test_unknown_tag_rejected(self):
        with pytest.raises(AssemblyError):
            schedule_programs(_programs([ld(0, 0, wait_for=("missing",))]))

    def test_duplicate_tag_rejected(self):
        with pytest.raises(AssemblyError):
            schedule_programs(_programs([st(0, 0, tag="t"), st(1, 0, tag="t")]))

    def test_circular_dependency_detected(self):
        a = [ld(0, 0, wait_for=("b",), tag="a")]
        b = [ld(0, 1, wait_for=("a",), tag="b")]
        with pytest.raises(ScheduleError):
            schedule_programs(_programs(a, b))

    def test_register_validation_happens_at_schedule_time(self):
        with pytest.raises(AssemblyError):
            schedule_programs(_programs([mac(0, 200)]), num_registers=16)
