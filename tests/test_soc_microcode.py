"""Tests for the Montgomery-multiplication and modular add/sub microcode."""

import pytest

from repro.errors import ParameterError
from repro.soc.coprocessor import CoprocessorConfig
from repro.soc.engine import ModularEngine
from repro.torus.params import get_parameters


@pytest.fixture(scope="module")
def toy_engine():
    return ModularEngine(get_parameters("toy-64").p, word_bits=16, num_cores=4)


@pytest.fixture(scope="module")
def torus_engine():
    return ModularEngine(get_parameters("ceilidh-170").p, word_bits=16, num_cores=4)


class TestMontgomeryMicrocode:
    def test_matches_reference_toy(self, toy_engine, rng):
        domain = toy_engine.domain
        p = domain.modulus
        for _ in range(10):
            xb, yb = rng.randrange(p), rng.randrange(p)
            value, cycles = toy_engine.mont_mul(xb, yb)
            assert value == domain.mont_mul(xb, yb)
            assert cycles > 0

    def test_matches_reference_170(self, torus_engine, rng):
        domain = torus_engine.domain
        p = domain.modulus
        for _ in range(3):
            xb, yb = rng.randrange(p), rng.randrange(p)
            value, _ = torus_engine.mont_mul(xb, yb)
            assert value == domain.mont_mul(xb, yb)

    def test_edge_operands(self, toy_engine):
        p = toy_engine.modulus
        assert toy_engine.mont_mul(0, p - 1)[0] == 0
        one = toy_engine.domain.one()
        assert toy_engine.from_montgomery(toy_engine.mont_mul(one, one)[0]) == 1

    def test_rejects_unreduced_operands(self, toy_engine):
        with pytest.raises(ParameterError):
            toy_engine.mont_mul(toy_engine.modulus, 1)

    def test_cycle_count_is_data_independent(self, toy_engine, rng):
        p = toy_engine.modulus
        cycles = {toy_engine.mont_mul(rng.randrange(p), rng.randrange(p))[1] for _ in range(5)}
        assert len(cycles) == 1

    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_core_count_sweep(self, cores, rng):
        params = get_parameters("toy-64")
        engine = ModularEngine(params.p, num_cores=cores)
        p = params.p
        xb, yb = rng.randrange(p), rng.randrange(p)
        value, _ = engine.mont_mul(xb, yb)
        assert value == engine.domain.mont_mul(xb, yb)

    def test_more_cores_fewer_cycles(self):
        params = get_parameters("ceilidh-170")
        single = ModularEngine(params.p, num_cores=1).measure_multiplication().cycles
        quad = ModularEngine(params.p, num_cores=4).measure_multiplication().cycles
        assert quad < single
        assert single / quad > 1.8  # the Fig. 5 parallelisation pays off

    def test_register_pressure_guard(self):
        # A single core cannot hold a 1024-bit operand in an 80-entry file.
        from repro.soc.system import default_rsa_modulus

        with pytest.raises(ParameterError):
            ModularEngine(default_rsa_modulus(1024), num_cores=1)

    def test_schedule_respects_port_constraint(self, toy_engine):
        schedule = toy_engine.multiplier.build_schedule()
        schedule.validate_port_constraint()

    def test_word_count_and_blocks(self, torus_engine):
        assert torus_engine.num_words == 11
        blocks = torus_engine.multiplier.schedule_blocks.blocks
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 10


class TestModularAddSub:
    def test_addition_strict(self, toy_engine, rng):
        p = toy_engine.modulus
        for _ in range(10):
            a, b = rng.randrange(p), rng.randrange(p)
            value, _ = toy_engine.mod_add(a, b)
            assert value == (a + b) % p

    def test_addition_wraparound_case(self, toy_engine):
        p = toy_engine.modulus
        value, cycles_slow = toy_engine.mod_add(p - 1, p - 1)
        assert value == (2 * p - 2) % p
        _, cycles_fast = toy_engine.mod_add(0, 1)
        assert cycles_slow > cycles_fast  # the correction tail was taken

    def test_subtraction(self, toy_engine, rng):
        p = toy_engine.modulus
        for _ in range(10):
            a, b = rng.randrange(p), rng.randrange(p)
            value, _ = toy_engine.mod_sub(a, b)
            assert value == (a - b) % p

    def test_subtraction_borrow_costs_more(self, toy_engine):
        _, fast = toy_engine.mod_sub(5, 3)
        _, slow = toy_engine.mod_sub(3, 5)
        assert slow > fast

    def test_lazy_addition_mode(self, rng):
        params = get_parameters("ceilidh-170")
        engine = ModularEngine(params.p, lazy_addition=True)
        p = params.p
        a, b = rng.randrange(p // 2), rng.randrange(p // 2)
        value, cycles = engine.mod_add(a, b)
        assert value == a + b  # no reduction applied below p
        assert cycles == engine.adder.fast_path_cycles()

    def test_measurements_shape(self, torus_engine):
        mm = torus_engine.measure_multiplication()
        ma = torus_engine.measure_addition()
        ms = torus_engine.measure_subtraction()
        # Paper Table 1 shape: MM >> MS >= MA, all positive.
        assert mm.cycles > ms.cycles >= ma.cycles > 0
        assert ms.worst_case_cycles > ms.fast_path_cycles


class TestScaling:
    def test_1024_vs_170_ratio(self, torus_engine):
        from repro.soc.system import default_rsa_modulus

        rsa_engine = ModularEngine(default_rsa_modulus(1024), num_cores=4)
        ratio = (
            rsa_engine.measure_multiplication().cycles
            / torus_engine.measure_multiplication().cycles
        )
        # The paper reports ~23x; the reproduction lands in the same regime.
        assert 10 < ratio < 35

    def test_160_close_to_170(self, torus_engine):
        from repro.ecc.curves import SECP160R1

        ecc_engine = ModularEngine(SECP160R1.p, num_cores=4)
        assert ecc_engine.measure_multiplication().cycles <= (
            torus_engine.measure_multiplication().cycles
        )
