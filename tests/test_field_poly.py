"""Tests for the dense polynomial helpers (repro.field.poly)."""

import pytest

from repro.errors import NotInvertibleError, ParameterError
from repro.field import poly as P
from repro.field.fp import PrimeField


@pytest.fixture(scope="module")
def field():
    return PrimeField(101)


class TestBasics:
    def test_trim_and_degree(self, field):
        assert P.trim([1, 2, 0, 0]) == [1, 2]
        assert P.degree([0]) == -1
        assert P.degree([5]) == 0
        assert P.degree([0, 0, 3]) == 2

    def test_add_sub(self, field):
        a, b = [1, 2, 3], [4, 5]
        assert P.poly_add(field, a, b) == [5, 7, 3]
        assert P.poly_sub(field, P.poly_add(field, a, b), b) == a

    def test_add_cancels_leading_terms(self, field):
        a = [1, 100]
        b = [2, 1]
        assert P.poly_add(field, a, b) == [3]

    def test_scale(self, field):
        assert P.poly_scale(field, [1, 2, 3], 2) == [2, 4, 6]
        assert P.poly_scale(field, [1, 2], 0) == []

    def test_mul(self, field):
        # (1 + x)(1 + x) = 1 + 2x + x^2
        assert P.poly_mul(field, [1, 1], [1, 1]) == [1, 2, 1]
        assert P.poly_mul(field, [], [1, 2]) == []

    def test_eval(self, field):
        # p(x) = 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38
        assert P.poly_eval(field, [3, 2, 1], 5) == 38


class TestDivision:
    def test_divmod_exact(self, field):
        a = P.poly_mul(field, [1, 2, 1], [3, 1])
        q, r = P.poly_divmod(field, a, [3, 1])
        assert q == [1, 2, 1]
        assert r == []

    def test_divmod_with_remainder(self, field):
        q, r = P.poly_divmod(field, [1, 0, 0, 1], [1, 1])  # x^3+1 by x+1
        assert P.poly_add(field, P.poly_mul(field, q, [1, 1]), r) == [1, 0, 0, 1]

    def test_division_by_zero(self, field):
        with pytest.raises(ParameterError):
            P.poly_divmod(field, [1, 2], [])

    def test_mod(self, field):
        assert P.poly_mod(field, [0, 0, 1], [1, 0, 1]) == [field.p - 1]  # x^2 mod x^2+1 = -1


class TestEgcdInverse:
    def test_egcd_bezout(self, field):
        a, b = [1, 2, 1], [1, 1]
        g, s, t = P.poly_egcd(field, a, b)
        lhs = P.poly_add(field, P.poly_mul(field, s, a), P.poly_mul(field, t, b))
        assert lhs == g
        assert g == [1, 1]  # gcd is monic x+1

    def test_inverse_mod(self, field):
        modulus = [1, 0, 1]  # x^2 + 1, irreducible mod 101? 101 = 1 mod 4 -> reducible.
        modulus = [2, 1, 1]  # x^2 + x + 2 (check by inverse property below)
        a = [5, 7]
        inv = P.poly_inverse_mod(field, a, modulus)
        product = P.poly_mod(field, P.poly_mul(field, a, inv), modulus)
        assert product == [1]

    def test_inverse_of_non_unit_raises(self, field):
        modulus = [0, 0, 1]  # x^2 (reducible); x has no inverse
        with pytest.raises(NotInvertibleError):
            P.poly_inverse_mod(field, [0, 1], modulus)

    def test_pow_mod(self, field):
        modulus = [2, 1, 1]
        a = [3, 4]
        cube = P.poly_pow_mod(field, a, 3, modulus)
        direct = P.poly_mod(
            field, P.poly_mul(field, P.poly_mul(field, a, a), a), modulus
        )
        assert cube == direct

    def test_pow_mod_zero_exponent(self, field):
        assert P.poly_pow_mod(field, [5, 6], 0, [2, 1, 1]) == [1]


class TestIrreducibility:
    def test_linear_always_irreducible(self, field):
        assert P.is_irreducible(field, [3, 1])

    def test_known_reducible(self, field):
        # (x+1)(x+2) = x^2 + 3x + 2
        assert not P.is_irreducible(field, [2, 3, 1])

    def test_ceilidh_moduli(self):
        from repro.torus.params import TOY_32

        field = PrimeField(TOY_32.p)
        assert P.is_irreducible(field, [1, field.p - 3, 0, 1])  # y^3 - 3y + 1
        assert P.is_irreducible(field, [1, 1, 1])  # x^2 + x + 1
        assert P.is_irreducible(field, [1, 0, 0, 1, 0, 0, 1])  # z^6 + z^3 + 1

    def test_constant_not_irreducible(self, field):
        assert not P.is_irreducible(field, [7])
