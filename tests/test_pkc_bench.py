"""The batched multi-session serving harness."""

from __future__ import annotations

import random

import pytest

from repro.errors import ParameterError, UnsupportedOperationError
from repro.pkc import get_scheme
from repro.pkc.bench import registry_batch_comparison, run_batch, run_batch_parallel


@pytest.fixture
def rng():
    return random.Random(0xBA7C4)


class TestRunBatch:
    def test_key_agreement_batch_accounting(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        result = run_batch(scheme, "key-agreement", 3, rng=rng)
        assert result.scheme == scheme.name
        assert result.sessions == 3
        assert result.wall_seconds > 0
        assert result.ops.total > 0
        # Each session sends one public key each way.
        assert result.wire_bytes == 3 * 2 * scheme.public_key_size()
        assert result.ops_per_session == pytest.approx(result.ops.total / 3)
        assert result.ms_per_session == pytest.approx(result.wall_seconds * 1e3 / 3)

    def test_encryption_batch_round_trips(self, rng):
        scheme = get_scheme("rsa-512")
        result = run_batch(scheme, "encryption", 2, rng=rng, payload=b"payload")
        assert result.sessions == 2
        # RSA-KEM wire: modulus-width wrap + 16-byte tag + payload, per session.
        assert result.wire_bytes == 2 * (64 + 16 + len(b"payload"))
        assert result.ops.total > 0

    def test_signature_batch(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        result = run_batch(scheme, "signature", 2, rng=rng)
        assert result.sessions == 2
        assert result.ops.total > 0
        assert result.wire_bytes > 0

    def test_server_key_reuse_amortizes_fixed_base_tables(self, rng):
        scheme = get_scheme("ceilidh-toy32", fresh=True)
        server = scheme.keygen(rng)
        run_batch(scheme, "key-agreement", 1, rng=rng, server=server)  # warm
        warm = run_batch(scheme, "key-agreement", 2, rng=rng, server=server)
        # Client keygens ride the cached generator table (zero squarings),
        # so only the two online derivations per session square.
        per_session = warm.ops.squarings / warm.sessions
        online = run_batch(scheme, "key-agreement", 1, rng=rng, server=server)
        assert per_session == pytest.approx(online.ops.squarings, rel=0.5)

    def test_unsupported_operation_rejected(self, rng):
        with pytest.raises(UnsupportedOperationError):
            run_batch(get_scheme("xtr-toy32"), "signature", 1, rng=rng)

    def test_unknown_operation_and_empty_batch_rejected(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        with pytest.raises(ParameterError):
            run_batch(scheme, "handshake", 1, rng=rng)
        with pytest.raises(ParameterError):
            run_batch(scheme, "key-agreement", 0, rng=rng)


class TestRegistryComparison:
    def test_skips_schemes_without_the_capability(self, rng):
        results = registry_batch_comparison(
            ("ceilidh-toy32", "xtr-toy32", "rsa-512"), "key-agreement", 2, rng=rng
        )
        assert [r.scheme for r in results] == ["ceilidh-toy32", "xtr-toy32"]

    def test_encryption_comparison_runs_the_encryptors(self, rng):
        results = registry_batch_comparison(
            ("ceilidh-toy32", "xtr-toy32", "rsa-512"), "encryption", 2, rng=rng
        )
        assert [r.scheme for r in results] == ["ceilidh-toy32", "rsa-512"]
        assert all(r.sessions == 2 for r in results)


class TestFastPathAndParallel:
    def test_collect_ops_false_takes_the_null_trace_path(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        result = run_batch(scheme, "key-agreement", 3, rng=rng, collect_ops=False)
        assert result.sessions == 3
        assert result.ops.total == 0  # nothing recorded on the fast path

    def test_parallel_batch_merges_worker_results(self):
        result = run_batch(
            get_scheme("ceilidh-toy32"), "key-agreement", 5,
            rng=random.Random(77), workers=2,
        )
        assert result.sessions == 5
        assert result.ops.total > 0
        assert result.wire_bytes > 0
        assert result.wall_seconds > 0

    def test_parallel_rejects_a_shared_server_key(self, rng):
        scheme = get_scheme("ceilidh-toy32")
        server = scheme.keygen(rng)
        with pytest.raises(ParameterError):
            run_batch(scheme, "key-agreement", 4, rng=rng, server=server, workers=2)

    def test_parallel_caps_workers_at_sessions(self):
        result = run_batch(
            get_scheme("ceilidh-toy32"), "key-agreement", 1,
            rng=random.Random(78), workers=8,
        )
        assert result.sessions == 1

    def test_parallel_zero_sessions_returns_empty_result(self):
        # Regression: workers = min(workers, 0) used to reach divmod(0, 0).
        result = run_batch_parallel("ceilidh-toy32", "key-agreement", 0, 4)
        assert result.sessions == 0
        assert result.wall_seconds == 0.0
        assert result.ops.total == 0
        assert result.wire_bytes == 0
        assert result.ms_per_session == 0.0
        assert result.ops_per_session == 0.0
        # Not inf: an empty batch must stay JSON-safe through the perf layer.
        assert result.sessions_per_second == 0.0

    def test_parallel_negative_sessions_rejected(self):
        with pytest.raises(ParameterError):
            run_batch_parallel("ceilidh-toy32", "key-agreement", -1, 4)
