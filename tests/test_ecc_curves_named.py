"""Tests for named curves, self-validation and toy-curve generation."""

import random

import pytest

from repro.errors import ParameterError
from repro.ecc.curves import (
    NAMED_CURVES,
    SECP160R1,
    SECP192R1,
    SECP256K1,
    NamedCurve,
    generate_toy_curve,
    get_curve,
    validate_named_curve,
)
from repro.ecc.scalar import scalar_mult_binary


class TestNamedCurves:
    @pytest.mark.parametrize("named", [SECP160R1, SECP192R1, SECP256K1], ids=lambda c: c.name)
    def test_generator_on_curve(self, named):
        curve, generator = named.build()
        assert curve.is_on_curve(generator.x, generator.y)

    def test_secp160r1_is_the_papers_size(self):
        assert SECP160R1.bits == 160
        assert SECP160R1.cofactor == 1

    def test_full_validation_of_160_bit_curve(self):
        validate_named_curve(SECP160R1)

    @pytest.mark.slow
    @pytest.mark.parametrize("named", [SECP192R1, SECP256K1], ids=lambda c: c.name)
    def test_full_validation_of_larger_curves(self, named):
        validate_named_curve(named)

    def test_lookup(self):
        assert get_curve("secp160r1") is SECP160R1
        assert set(NAMED_CURVES) == {"secp160r1", "secp192r1", "secp256k1"}
        with pytest.raises(ParameterError):
            get_curve("brainpool999")

    def test_validation_catches_corruption(self):
        from repro.errors import ReproError

        corrupted = NamedCurve(
            name="broken",
            p=SECP160R1.p,
            a=SECP160R1.a,
            b=SECP160R1.b,
            gx=SECP160R1.gx,
            gy=SECP160R1.gy ^ 1,
            order=SECP160R1.order,
            cofactor=1,
        )
        with pytest.raises(ReproError):
            validate_named_curve(corrupted)

    def test_validation_catches_wrong_order(self):
        corrupted = NamedCurve(
            name="broken",
            p=SECP160R1.p,
            a=SECP160R1.a,
            b=SECP160R1.b,
            gx=SECP160R1.gx,
            gy=SECP160R1.gy,
            order=SECP160R1.order + 4,
            cofactor=1,
        )
        with pytest.raises(ParameterError):
            validate_named_curve(corrupted)


class TestToyCurves:
    def test_generated_curve_is_consistent(self):
        named = generate_toy_curve(1009, random.Random(5))
        curve, generator = named.build()
        assert curve.is_on_curve(generator.x, generator.y)
        assert scalar_mult_binary(generator, named.order).is_infinity()

    def test_order_is_prime(self):
        from repro.nt.primality import is_probable_prime

        named = generate_toy_curve(601, random.Random(6))
        assert is_probable_prime(named.order)

    def test_rejects_large_fields(self):
        with pytest.raises(ParameterError):
            generate_toy_curve(1_000_003)

    def test_rejects_composite_characteristic(self):
        with pytest.raises(ParameterError):
            generate_toy_curve(1000)
