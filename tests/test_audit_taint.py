"""Per-rule fixtures for the secret-taint rules (CT101-CT104).

Every rule gets at least one planted violation and a clean twin — the same
shape with the secret flow removed — so the suite proves both that the rule
fires and that it does not fire on the innocent variant.  Snippets are
written to a temp tree and audited with the real engine; nothing is mocked.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.audit.engine import run_audit


def audit_snippet(tmp_path, source: str, name: str = "mod.py", strict: bool = False):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_audit(tmp_path, strict=strict)


def new_rules(result):
    return sorted({finding.rule for finding in result.findings if finding.status == "new"})


# -- CT101: secret-dependent control flow ---------------------------------------


def test_ct101_branch_on_sampled_exponent(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q):
            k = sample_exponent(q)
            if k > 5:
                return 1
            return 0
        """,
    )
    assert "CT101" in new_rules(result)


def test_ct101_clean_twin_branches_on_public_value(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q):
            k = sample_exponent(q)
            if q > 5:
                return k
            return 0
        """,
    )
    assert "CT101" not in new_rules(result)


def test_ct101_while_loop_on_secret(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q):
            k = sample_exponent(q)
            while k % 2 == 0:
                k = k // 2
            return k
        """,
    )
    assert "CT101" in new_rules(result)


def test_ct101_vetted_strategy_module_is_exempt(tmp_path):
    source = """
    def ladder(q):
        k = sample_exponent(q)
        if k & 1:
            return 1
        return 0
    """
    flagged = audit_snippet(tmp_path / "a", source, name="other/strategies.py")
    exempt = audit_snippet(tmp_path / "b", source, name="exp/strategies.py")
    assert "CT101" in new_rules(flagged)
    assert "CT101" not in new_rules(exempt)


def test_ct101_is_none_check_is_presence_not_value(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(secret):
            if secret is None:
                return 0
            return 1
        """,
    )
    assert new_rules(result) == []


# -- CT102: secret as container/cache key ---------------------------------------


def test_ct102_secret_subscript_key(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q, table):
            k = sample_exponent(q)
            return table[k]
        """,
    )
    assert "CT102" in new_rules(result)


def test_ct102_clean_twin_public_key(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q, table):
            k = sample_exponent(q)
            return table[q] + k
        """,
    )
    assert "CT102" not in new_rules(result)


def test_ct102_secret_argument_to_memoized_function(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        import functools

        @functools.lru_cache(maxsize=None)
        def table_lookup(x):
            return x * x

        def f(q):
            k = sample_exponent(q)
            return table_lookup(k)
        """,
    )
    assert "CT102" in new_rules(result)


def test_ct102_dict_get_with_secret_key(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q, cache):
            k = sample_exponent(q)
            return cache.get(k)
        """,
    )
    assert "CT102" in new_rules(result)


# -- CT103: non-constant-time equality ------------------------------------------


def test_ct103_digest_of_secret_compared_with_eq(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        import hashlib

        def f(q, guess):
            k = sample_exponent(q)
            tag = hashlib.sha256(bytes(k)).digest()
            return tag == guess
        """,
    )
    assert "CT103" in new_rules(result)


def test_ct103_clean_twin_uses_compare_digest(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        import hashlib
        import hmac

        def f(q, guess):
            k = sample_exponent(q)
            tag = hashlib.sha256(bytes(k)).digest()
            return hmac.compare_digest(tag, guess)
        """,
    )
    assert "CT103" not in new_rules(result)


def test_ct103_small_constant_compare_is_ct101_not_ct103(tmp_path):
    # ``k == 0`` is a control-flow question (branch shape), not a
    # byte-comparison oracle; it must surface as CT101, once.
    result = audit_snippet(
        tmp_path,
        """
        def f(q):
            k = sample_exponent(q)
            if k == 0:
                return 1
            return 0
        """,
    )
    rules = new_rules(result)
    assert "CT101" in rules
    assert "CT103" not in rules


def test_ct103_key_agreement_result_comparison(tmp_path):
    # The shape of the real finding this analyzer was built to catch
    # (serve/client.py: confirmation tag checked with ``!=``).
    result = audit_snippet(
        tmp_path,
        """
        def session(scheme, pair, server_public, payload):
            shared = scheme.key_agreement(pair, server_public)
            tag = confirmation_tag(shared)
            if payload != tag:
                raise ValueError("tags disagree")
        """,
    )
    assert "CT103" in new_rules(result)


# -- CT104: secret reaches logging/formatting/serialization ---------------------


def test_ct104_secret_printed(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q):
            k = sample_exponent(q)
            print(k)
        """,
    )
    assert "CT104" in new_rules(result)


def test_ct104_secret_in_fstring(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q):
            k = sample_exponent(q)
            return f"exponent is {k}"
        """,
    )
    assert "CT104" in new_rules(result)


def test_ct104_secret_pickled(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        import pickle

        def f(q):
            k = sample_exponent(q)
            return pickle.dumps(k)
        """,
    )
    assert "CT104" in new_rules(result)


def test_ct104_clean_twin_logs_public_metadata(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(q):
            k = sample_exponent(q)
            print("drew an exponent of", k.bit_length(), "bits for modulus", q)
            return k
        """,
    )
    assert "CT104" not in new_rules(result)


# -- sources: annotations and markers -------------------------------------------


def test_secret_dataclass_annotation_taints_attribute_reads(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        from dataclasses import dataclass
        from repro.audit.annotations import Secret

        @dataclass
        class KeyPair:
            private: Secret[int]
            label: str

        def f(kp: KeyPair, guess):
            return bytes(kp.private) == guess
        """,
    )
    assert "CT103" in new_rules(result)


def test_public_sibling_attribute_stays_clean(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        from dataclasses import dataclass
        from repro.audit.annotations import Secret

        @dataclass
        class KeyPair:
            private: Secret[int]
            label: str

        def f(kp: KeyPair, guess):
            return kp.label == guess
        """,
    )
    assert new_rules(result) == []


def test_secret_marker_on_def_taints_call_sites(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def weird_source(q):  # audit: secret
            return q * 3

        def f(q):
            k = weird_source(q)
            if k > 5:
                return 1
            return 0
        """,
    )
    assert "CT101" in new_rules(result)


def test_secret_marker_on_assignment_taints_names(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        def f(blob):
            k = decode_mystery(blob)  # audit: secret
            print(k)
        """,
    )
    assert "CT104" in new_rules(result)


def test_secret_return_annotation_taints_call_sites(tmp_path):
    result = audit_snippet(
        tmp_path,
        """
        from repro.audit.annotations import Secret

        def derive_thing(q) -> Secret[int]:
            return q * 3

        def f(q):
            k = derive_thing(q)
            if k > 5:
                return 1
            return 0
        """,
    )
    assert "CT101" in new_rules(result)


def test_optimistic_call_boundary_does_not_propagate(tmp_path):
    # exponentiate(g, k) with secret k returns a *public* element — the
    # optimistic boundary is what keeps the group tower usable.
    result = audit_snippet(
        tmp_path,
        """
        def f(group, g, q):
            k = sample_exponent(q)
            element = exponentiate(g, k)
            if element == group.one():
                return None
            return element
        """,
    )
    assert new_rules(result) == []
