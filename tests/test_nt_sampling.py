"""The unified secret-exponent sampler."""

from __future__ import annotations

import random

import pytest

from repro.errors import ParameterError
from repro.nt.sampling import sample_exponent


class TestSampleExponent:
    def test_range_is_1_inclusive_q_exclusive(self):
        rng = random.Random(1)
        seen = {sample_exponent(7, rng) for _ in range(500)}
        assert seen == {1, 2, 3, 4, 5, 6}

    def test_q_two_always_returns_one(self):
        rng = random.Random(2)
        assert all(sample_exponent(2, rng) == 1 for _ in range(10))

    @pytest.mark.parametrize("q", [1, 0, -5])
    def test_degenerate_q_rejected(self, q):
        with pytest.raises(ParameterError):
            sample_exponent(q)

    def test_deterministic_under_seeded_rng(self):
        assert sample_exponent(10**9, random.Random(3)) == sample_exponent(
            10**9, random.Random(3)
        )

    def test_default_rng_used_when_omitted(self):
        value = sample_exponent(1 << 64)
        assert 1 <= value < (1 << 64)

    def test_every_protocol_layer_uses_it(self, rng):
        """The [1, q) convention holds at every keygen site (XTR's old floor was 2)."""
        from repro.ecc.curves import generate_toy_curve
        from repro.ecc.ecdh import ecdh_generate
        from repro.torus.ceilidh import CeilidhSystem
        from repro.xtr.keyagreement import XtrSystem

        ceilidh = CeilidhSystem("toy-20")
        xtr = XtrSystem("toy-20")
        curve = generate_toy_curve(1009, random.Random(7))
        for _ in range(5):
            assert 1 <= ceilidh.generate_keypair(rng).private < ceilidh.params.q
            assert 1 <= xtr.generate_keypair(rng).private < xtr.params.q
            assert 1 <= ecdh_generate(curve, rng).private < curve.order
