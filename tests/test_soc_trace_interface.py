"""Tests for the execution-trace accounting and the public API surface."""

import pytest

import repro
from repro.errors import (
    AssemblyError,
    CompressionError,
    DecryptionError,
    ExecutionError,
    MemoryMapError,
    NotInTorusError,
    NotInvertibleError,
    NotOnCurveError,
    ParameterError,
    ReproError,
    ScheduleError,
    SignatureError,
    SocError,
)
from repro.soc.trace import ExecutionTrace, TraceEvent


class TestExecutionTrace:
    def test_accumulation_and_breakdown(self):
        trace = ExecutionTrace(name="demo")
        trace.add("issue", "interface", 184)
        trace.add("mm", "compute", 300)
        trace.add("ma", "compute", 47)
        assert trace.total_cycles == 531
        assert trace.breakdown() == {"interface": 184, "compute": 347}

    def test_communication_fraction(self):
        trace = ExecutionTrace(name="demo")
        trace.add("issue", "interface", 50)
        trace.add("dispatch", "dispatch", 50)
        trace.add("mm", "compute", 100)
        assert trace.communication_fraction() == pytest.approx(0.5)

    def test_empty_trace(self):
        trace = ExecutionTrace(name="empty")
        assert trace.total_cycles == 0
        assert trace.communication_fraction() == 0.0

    def test_render_contains_percentages(self):
        trace = ExecutionTrace(name="demo", events=[TraceEvent("x", "compute", 10)])
        assert "100.0%" in trace.render()


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for exc_type in (
            ParameterError,
            NotInvertibleError,
            NotOnCurveError,
            CompressionError,
            NotInTorusError,
            SignatureError,
            DecryptionError,
            SocError,
            AssemblyError,
            ScheduleError,
            ExecutionError,
            MemoryMapError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_soc_errors_group_together(self):
        for exc_type in (AssemblyError, ScheduleError, ExecutionError, MemoryMapError):
            assert issubclass(exc_type, SocError)

    def test_not_invertible_carries_context(self):
        error = NotInvertibleError(6, 9)
        assert error.value == 6 and error.modulus == 9
        assert "6" in str(error) and "9" in str(error)


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.ecc
        import repro.field
        import repro.montgomery
        import repro.nt
        import repro.rsa
        import repro.soc
        import repro.torus
        import repro.xtr

        for module in (
            repro.nt,
            repro.field,
            repro.montgomery,
            repro.torus,
            repro.ecc,
            repro.rsa,
            repro.soc,
            repro.analysis,
            repro.xtr,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, f"{module.__name__}.{name}"

    def test_quickstart_surface(self):
        # The README quickstart relies on exactly these entry points.
        system = repro.CeilidhSystem(repro.get_parameters("toy-20"))
        platform = repro.Platform(repro.PlatformConfig(num_cores=2))
        assert system.params.compression_factor == 3
        assert platform.config.num_cores == 2
