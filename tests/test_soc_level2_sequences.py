"""Tests for the level-2 IR and the Fp6 / ECC operation sequences."""

import pytest

from repro.errors import ParameterError
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.montgomery.domain import MontgomeryDomain
from repro.soc.level2 import Level2Program, ModOpKind, SoftwareBackend
from repro.soc.sequences import (
    ecc_point_addition_program,
    ecc_point_doubling_program,
    ecc_point_from_memory,
    ecc_point_memory,
    fp6_multiplication_program,
    lazy_mode_headroom_ok,
    run_fp6_multiplication,
)
from repro.torus.params import get_parameters


class TestLevel2Ir:
    def test_program_building_and_counts(self):
        program = Level2Program(name="demo", inputs=("a", "b"), outputs=("c",))
        program.mm("t", "a", "b")
        program.ma("c", "t", "a")
        program.ms("c", "c", "b")
        counts = program.counts()
        assert counts.mm == 1 and counts.ma == 1 and counts.ms == 1
        assert counts.total == 3 and counts.additions_total == 2
        assert len(program) == 3
        assert program.operand_names() == ["t", "a", "b", "c"]

    def test_execute_with_software_backend(self, toy32_params, rng):
        domain = MontgomeryDomain(toy32_params.p, word_bits=16)
        backend = SoftwareBackend(domain)
        program = Level2Program(name="demo", inputs=("a", "b"))
        program.ma("c", "a", "b")
        memory = {"a": 5, "b": 7}
        program.execute(backend, memory)
        assert memory["c"] == 12

    def test_missing_input_detected(self, toy32_params):
        domain = MontgomeryDomain(toy32_params.p, word_bits=16)
        program = Level2Program(name="demo", inputs=("a",))
        program.ma("c", "a", "a")
        with pytest.raises(ParameterError):
            program.execute(SoftwareBackend(domain), {})

    def test_modop_repr(self):
        program = Level2Program(name="demo")
        program.mm("c", "a", "b", comment="product")
        assert "MM c, a, b" in repr(program.operations[0])


class TestFp6Sequence:
    def test_operation_counts_match_paper(self):
        counts = fp6_multiplication_program().counts()
        assert counts.mm == 18  # the paper's 18M
        assert 55 <= counts.additions_total <= 70  # the paper quotes ~60A

    def test_matches_field_arithmetic(self, toy32_params, rng):
        field = PrimeField(toy32_params.p)
        fp6 = make_fp6(field)
        domain = MontgomeryDomain(toy32_params.p, word_bits=16)
        backend = SoftwareBackend(domain)
        for _ in range(10):
            a, b = fp6.random_element(rng), fp6.random_element(rng)
            result = run_fp6_multiplication(backend, domain, fp6, a, b)
            assert result == fp6.mul(a, b)

    def test_matches_field_arithmetic_170(self, ceilidh170_params, rng):
        field = PrimeField(ceilidh170_params.p)
        fp6 = make_fp6(field)
        domain = MontgomeryDomain(ceilidh170_params.p, word_bits=16)
        backend = SoftwareBackend(domain)
        a, b = fp6.random_element(rng), fp6.random_element(rng)
        assert run_fp6_multiplication(backend, domain, fp6, a, b) == fp6.mul(a, b)

    def test_headroom_analysis(self, ceilidh170_params):
        assert lazy_mode_headroom_ok(MontgomeryDomain(ceilidh170_params.p, word_bits=16))
        from repro.ecc.curves import SECP160R1

        assert not lazy_mode_headroom_ok(MontgomeryDomain(SECP160R1.p, word_bits=16))


class TestEccSequences:
    def test_doubling_matches_reference(self, toy_curve, rng):
        curve, generator = toy_curve.build()
        domain = MontgomeryDomain(curve.field.p, word_bits=16)
        backend = SoftwareBackend(domain)
        program = ecc_point_doubling_program()
        jacobian = generator.to_jacobian()
        memory = ecc_point_memory(
            domain, {"X1": jacobian.x, "Y1": jacobian.y, "Z1": jacobian.z, "a": curve.a}
        )
        program.execute(backend, memory)
        x3, y3, z3 = ecc_point_from_memory(domain, memory)
        expected = jacobian.double()
        from repro.ecc.point import JacobianPoint

        assert JacobianPoint(curve, x3, y3, z3) == expected

    def test_addition_matches_reference(self, toy_curve, rng):
        curve, generator = toy_curve.build()
        domain = MontgomeryDomain(curve.field.p, word_bits=16)
        backend = SoftwareBackend(domain)
        program = ecc_point_addition_program()
        p1 = generator.to_jacobian()
        p2 = generator.double().double().to_jacobian()
        memory = ecc_point_memory(
            domain,
            {"X1": p1.x, "Y1": p1.y, "Z1": p1.z, "X2": p2.x, "Y2": p2.y, "Z2": p2.z},
        )
        program.execute(backend, memory)
        x3, y3, z3 = ecc_point_from_memory(domain, memory)
        from repro.ecc.point import JacobianPoint

        assert JacobianPoint(curve, x3, y3, z3) == p1.add(p2)

    def test_addition_matches_on_160_bit_curve(self, rng):
        from repro.ecc.curves import SECP160R1
        from repro.ecc.point import JacobianPoint
        from repro.ecc.scalar import scalar_mult_binary

        curve, generator = SECP160R1.build()
        domain = MontgomeryDomain(curve.field.p, word_bits=16)
        backend = SoftwareBackend(domain)
        p1 = scalar_mult_binary(generator, 12345).to_jacobian()
        p2 = scalar_mult_binary(generator, 67890).to_jacobian()
        memory = ecc_point_memory(
            domain,
            {"X1": p1.x, "Y1": p1.y, "Z1": p1.z, "X2": p2.x, "Y2": p2.y, "Z2": p2.z},
        )
        ecc_point_addition_program().execute(backend, memory)
        x3, y3, z3 = ecc_point_from_memory(domain, memory)
        assert JacobianPoint(curve, x3, y3, z3) == p1.add(p2)

    def test_operation_counts(self):
        pa = ecc_point_addition_program().counts()
        pd = ecc_point_doubling_program().counts()
        assert pa.mm == 16 and pa.additions_total == 7
        assert pd.mm == 10 and pd.additions_total == 13
        # Point addition is more multiplication-heavy than doubling, as in Table 2.
        assert pa.mm > pd.mm
