"""Property-based tests for the coprocessor microcode.

Every sample runs real microcode on the cycle-accurate simulator, so the
operand size is kept small (64-bit, four 16-bit words) and the example count
modest; the fixed-vector tests in test_soc_microcode.py cover the larger
operand sizes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.soc.engine import ModularEngine
from repro.torus.params import TOY_64

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_ENGINE = ModularEngine(TOY_64.p, word_bits=16, num_cores=4)
_P = TOY_64.p

operands = st.integers(min_value=0, max_value=_P - 1)


class TestMicrocodeProperties:
    @given(x=operands, y=operands)
    @_SETTINGS
    def test_montgomery_microcode_matches_reference(self, x, y):
        value, _ = _ENGINE.mont_mul(x, y)
        assert value == _ENGINE.domain.mont_mul(x, y)

    @given(a=operands, b=operands)
    @_SETTINGS
    def test_addition_microcode(self, a, b):
        value, _ = _ENGINE.mod_add(a, b)
        assert value == (a + b) % _P

    @given(a=operands, b=operands)
    @_SETTINGS
    def test_subtraction_microcode(self, a, b):
        value, _ = _ENGINE.mod_sub(a, b)
        assert value == (a - b) % _P

    @given(a=operands, b=operands, c=operands)
    @_SETTINGS
    def test_microcoded_ring_identity(self, a, b, c):
        # (a + b) * c == a*c + b*c, computed entirely through the coprocessor.
        domain = _ENGINE.domain
        left_sum, _ = _ENGINE.mod_add(a, b)
        left, _ = _ENGINE.mont_mul(domain.to_montgomery(left_sum), domain.to_montgomery(c))
        ac, _ = _ENGINE.mont_mul(domain.to_montgomery(a), domain.to_montgomery(c))
        bc, _ = _ENGINE.mont_mul(domain.to_montgomery(b), domain.to_montgomery(c))
        right, _ = _ENGINE.mod_add(ac, bc)
        assert domain.from_montgomery(left) == domain.from_montgomery(right)
