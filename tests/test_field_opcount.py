"""Tests for the operation-counting prime field."""

from repro.field.fp6 import make_fp6
from repro.field.opcount import CountingPrimeField, OperationCounts


class TestOperationCounts:
    def test_accumulates(self):
        field = CountingPrimeField(10007)
        field.mul(2, 3)
        field.add(2, 3)
        field.sub(2, 3)
        field.inv(5)
        assert field.counts.mul == 1
        assert field.counts.add == 1
        assert field.counts.sub == 1
        assert field.counts.inv == 1
        assert field.counts.additions_total == 2
        assert field.counts.multiplications_total == 1

    def test_reset(self):
        field = CountingPrimeField(10007)
        field.mul(2, 3)
        field.reset_counts()
        assert field.counts.mul == 0

    def test_snapshot_and_difference(self):
        field = CountingPrimeField(10007)
        field.mul(2, 3)
        before = field.counts.snapshot()
        field.mul(4, 5)
        field.add(1, 1)
        delta = field.counts - before
        assert delta.mul == 1 and delta.add == 1

    def test_pow_charges_square_and_multiply(self):
        field = CountingPrimeField(10007)
        field.reset_counts()
        field.pow(3, 0b1011)  # 4 bits: 3 squarings + 2 multiplications
        assert field.counts.mul == 5

    def test_pow_zero_and_negative(self):
        field = CountingPrimeField(10007)
        assert field.pow(5, 0) == 1
        assert field.pow(5, -1) == field.inv(5) % field.p
        assert field.counts.inv >= 1

    def test_sqr_counts_as_multiplication(self):
        field = CountingPrimeField(10007)
        field.reset_counts()
        field.sqr(9)
        assert field.counts.mul == 1

    def test_as_dict(self):
        counts = OperationCounts(mul=2, add=3, sub=1, inv=0)
        d = counts.as_dict()
        assert d["mul"] == 2 and d["add"] == 3 and d["sub"] == 1

    def test_results_match_plain_field(self, rng):
        plain_results = []
        counting = CountingPrimeField(10007)
        for _ in range(10):
            a, b = rng.randrange(10007), rng.randrange(1, 10007)
            assert counting.mul(a, b) == a * b % 10007
            assert counting.add(a, b) == (a + b) % 10007
            assert counting.inv(b) * b % 10007 == 1
        del plain_results

    def test_fp6_multiplication_profile(self, rng):
        from repro.torus.params import TOY_32

        field = CountingPrimeField(TOY_32.p)
        fp6 = make_fp6(field)
        a, b = fp6.random_element(rng), fp6.random_element(rng)
        field.reset_counts()
        fp6.mul_schoolbook(a, b)
        schoolbook = field.counts.mul
        field.reset_counts()
        fp6.mul_paper(a, b)
        assert field.counts.mul == 18
        # The generic schoolbook path (36 coefficient products plus the
        # polynomial reduction) uses far more base-field multiplications.
        assert schoolbook > 2 * 18
