"""Tests for repro.nt.words."""

import pytest

from repro.errors import ParameterError
from repro.nt.words import bit_length_words, from_words, to_words, word_length


class TestWordLength:
    def test_exact_multiples(self):
        assert word_length(160, 16) == 10
        assert word_length(1024, 16) == 64

    def test_round_up(self):
        assert word_length(170, 16) == 11
        assert word_length(1, 16) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            word_length(0, 16)
        with pytest.raises(ParameterError):
            word_length(16, 0)


class TestToFromWords:
    def test_roundtrip(self):
        value = 0x1234_5678_9ABC_DEF0_1122
        words = to_words(value, 6, 16)
        assert len(words) == 6
        assert from_words(words, 16) == value

    def test_little_endian_order(self):
        assert to_words(0x0102, 2, 8) == [0x02, 0x01]

    def test_zero(self):
        assert to_words(0, 4, 16) == [0, 0, 0, 0]
        assert from_words([0, 0, 0], 16) == 0

    def test_overflow_detected(self):
        with pytest.raises(ParameterError):
            to_words(1 << 32, 2, 16)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            to_words(-1, 2, 16)

    def test_from_words_range_check(self):
        with pytest.raises(ParameterError):
            from_words([1 << 16], 16)

    def test_bit_length_words(self):
        assert bit_length_words(0, 16) == 1
        assert bit_length_words(0xFFFF, 16) == 1
        assert bit_length_words(0x1_0000, 16) == 2
        with pytest.raises(ParameterError):
            bit_length_words(-5, 16)
