"""Tests for the tower representation F2 and the tau conversion maps."""

import pytest

from repro.errors import ParameterError
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.field.towers import F1ToF2Map, TowerFp6


@pytest.fixture(scope="module")
def setup(toy32_params):
    field = PrimeField(toy32_params.p)
    fp6 = make_fp6(field)
    tower = TowerFp6(field)
    converter = F1ToF2Map(fp6, tower)
    return field, fp6, tower, converter


class TestTowerArithmetic:
    def test_x_is_cube_root_of_unity(self, setup):
        _, _, tower, _ = setup
        x = tower.x()
        assert tower.mul(tower.mul(x, x), x).is_one()
        assert not x.is_one()

    def test_inverse(self, setup, rng):
        _, _, tower, _ = setup
        a = tower.random_element(rng)
        if a.is_zero():
            a = tower.one()
        assert tower.mul(a, tower.inv(a)).is_one()

    def test_inverse_of_zero_raises(self, setup):
        _, _, tower, _ = setup
        with pytest.raises(ParameterError):
            tower.inv(tower.zero())

    def test_conjugation_is_involution(self, setup, rng):
        _, _, tower, _ = setup
        a = tower.random_element(rng)
        assert a.conjugate().conjugate() == a

    def test_norm_is_conjugate_product(self, setup, rng):
        _, _, tower, _ = setup
        a = tower.random_element(rng)
        product = tower.mul(a, a.conjugate())
        assert product.is_fp3()
        assert product.a == a.norm_to_fp3()

    def test_pow(self, setup, rng):
        _, _, tower, _ = setup
        a = tower.random_element(rng)
        assert tower.pow(a, 5) == tower.mul(tower.pow(a, 2), tower.pow(a, 3))

    def test_tower_requires_p_2_mod_3(self):
        with pytest.raises(ParameterError):
            TowerFp6(PrimeField(13))


class TestConversionMaps:
    def test_roundtrip_f1_f2(self, setup, rng):
        _, fp6, _, converter = setup
        for _ in range(10):
            a = fp6.random_element(rng)
            assert converter.to_f1(converter.to_f2(a)) == a

    def test_roundtrip_f2_f1(self, setup, rng):
        _, fp6, tower, converter = setup
        u = tower.random_element(rng)
        assert converter.to_f2(converter.to_f1(u)) == u

    def test_is_ring_homomorphism(self, setup, rng):
        _, fp6, tower, converter = setup
        a, b = fp6.random_element(rng), fp6.random_element(rng)
        assert converter.to_f2(fp6.mul(a, b)) == tower.mul(
            converter.to_f2(a), converter.to_f2(b)
        )
        assert converter.to_f2(fp6.add(a, b)) == converter.to_f2(a) + converter.to_f2(b)

    def test_maps_one_to_one(self, setup):
        _, fp6, tower, converter = setup
        assert converter.to_f2(fp6.one()).is_one()
        assert converter.to_f1(tower.one()).is_one()

    def test_x_corresponds_to_z_cubed(self, setup):
        _, fp6, tower, converter = setup
        z = fp6.generator()
        assert converter.to_f2(fp6.pow(z, 3)) == tower.x()

    def test_y_relation(self, setup):
        # y = z - z^2 - z^5 satisfies y^3 - 3y + 1 = 0 in F1.
        field, fp6, tower, converter = setup
        y_in_f1 = converter.to_f1(tower.from_fp3(tower.fp3.generator()))
        expected = fp6([0, 1, field.p - 1, 0, 0, field.p - 1])
        assert y_in_f1 == expected
        cube = fp6.mul(fp6.mul(y_in_f1, y_in_f1), y_in_f1)
        three_y = fp6.scalar_mul(y_in_f1, 3)
        assert fp6.add(fp6.sub(cube, three_y), fp6.one()).is_zero()

    def test_frobenius_p3_is_conjugation(self, setup, rng):
        _, fp6, tower, converter = setup
        a = fp6.random_element(rng)
        lhs = converter.to_f2(fp6.frobenius(a, 3))
        rhs = converter.to_f2(a).conjugate()
        assert lhs == rhs
